package framesa

import (
	"mozart/internal/core"
	"mozart/internal/frame"
)

func retExpr(t core.TypeExpr) *core.TypeExpr { return &t }

// makeSeriesBinary wraps f(a, b) -> Series as @splittable(a: S, b: S) -> S.
func makeSeriesBinary(name string, f func(a, b *frame.Series) *frame.Series) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		return f(args[0].(*frame.Series), args[1].(*frame.Series)), nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "a", Type: core.Generic("S")},
		{Name: "b", Type: core.Generic("S")},
	}, Ret: retExpr(core.Generic("S"))}
	return fn, sa
}

// makeSeriesUnary wraps f(a) -> Series as @splittable(a: S) -> S.
func makeSeriesUnary(name string, f func(a *frame.Series) *frame.Series) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		return f(args[0].(*frame.Series)), nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "a", Type: core.Generic("S")},
	}, Ret: retExpr(core.Generic("S"))}
	return fn, sa
}

// makeSeriesFloatScalar wraps f(a, c) -> Series as
// @splittable(a: S, c: _) -> S.
func makeSeriesFloatScalar(name string, f func(a *frame.Series, c float64) *frame.Series) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		return f(args[0].(*frame.Series), args[1].(float64)), nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "a", Type: core.Generic("S")},
		{Name: "c", Type: core.Missing()},
	}, Ret: retExpr(core.Generic("S"))}
	return fn, sa
}

var (
	addFn, addSA = makeSeriesBinary("sr.add", frame.AddSeries)
	subFn, subSA = makeSeriesBinary("sr.sub", frame.SubSeries)
	mulFn, mulSA = makeSeriesBinary("sr.mul", frame.MulSeries)
	divFn, divSA = makeSeriesBinary("sr.div", frame.DivSeries)
	andFn, andSA = makeSeriesBinary("sr.and", frame.And)
	orFn, orSA   = makeSeriesBinary("sr.or", frame.Or)
	m2nFn, m2nSA = makeSeriesBinary("sr.maskToNull", frame.MaskToNull)

	notFn, notSA       = makeSeriesUnary("sr.not", frame.Not)
	isNullFn, isNullSA = makeSeriesUnary("sr.isnull", frame.IsNull)

	addSclFn, addSclSA = makeSeriesFloatScalar("sr.add.s", frame.AddScalar)
	subSclFn, subSclSA = makeSeriesFloatScalar("sr.sub.s", frame.SubScalar)
	mulSclFn, mulSclSA = makeSeriesFloatScalar("sr.mul.s", frame.MulScalar)
	divSclFn, divSclSA = makeSeriesFloatScalar("sr.div.s", frame.DivScalar)
	gtFn, gtSA         = makeSeriesFloatScalar("sr.gt", frame.GtScalar)
	ltFn, ltSA         = makeSeriesFloatScalar("sr.lt", frame.LtScalar)
	geFn, geSA         = makeSeriesFloatScalar("sr.ge", frame.GeScalar)
	fillNaFn, fillNaSA = makeSeriesFloatScalar("sr.fillna", frame.FillNullFloat)
)

// AddSeries registers a + b.
func AddSeries(s *core.Session, a, b any) *core.Future { return s.Call(addFn, addSA, a, b) }

// SubSeries registers a - b.
func SubSeries(s *core.Session, a, b any) *core.Future { return s.Call(subFn, subSA, a, b) }

// MulSeries registers a * b.
func MulSeries(s *core.Session, a, b any) *core.Future { return s.Call(mulFn, mulSA, a, b) }

// DivSeries registers a / b.
func DivSeries(s *core.Session, a, b any) *core.Future { return s.Call(divFn, divSA, a, b) }

// And registers the conjunction of two masks.
func And(s *core.Session, a, b any) *core.Future { return s.Call(andFn, andSA, a, b) }

// Or registers the disjunction of two masks.
func Or(s *core.Session, a, b any) *core.Future { return s.Call(orFn, orSA, a, b) }

// Not registers the negation of a mask.
func Not(s *core.Session, a any) *core.Future { return s.Call(notFn, notSA, a) }

// IsNull registers the null mask of a series.
func IsNull(s *core.Session, a any) *core.Future { return s.Call(isNullFn, isNullSA, a) }

// MaskToNull registers nulling of rows selected by mask.
func MaskToNull(s *core.Session, a, mask any) *core.Future { return s.Call(m2nFn, m2nSA, a, mask) }

// AddScalar registers a + c.
func AddScalar(s *core.Session, a any, c float64) *core.Future {
	return s.Call(addSclFn, addSclSA, a, c)
}

// SubScalar registers a - c.
func SubScalar(s *core.Session, a any, c float64) *core.Future {
	return s.Call(subSclFn, subSclSA, a, c)
}

// MulScalar registers a * c.
func MulScalar(s *core.Session, a any, c float64) *core.Future {
	return s.Call(mulSclFn, mulSclSA, a, c)
}

// DivScalar registers a / c.
func DivScalar(s *core.Session, a any, c float64) *core.Future {
	return s.Call(divSclFn, divSclSA, a, c)
}

// GtScalar registers the a > c mask.
func GtScalar(s *core.Session, a any, c float64) *core.Future { return s.Call(gtFn, gtSA, a, c) }

// LtScalar registers the a < c mask.
func LtScalar(s *core.Session, a any, c float64) *core.Future { return s.Call(ltFn, ltSA, a, c) }

// GeScalar registers the a >= c mask.
func GeScalar(s *core.Session, a any, c float64) *core.Future { return s.Call(geFn, geSA, a, c) }

// FillNullFloat registers fillna(c).
func FillNullFloat(s *core.Session, a any, c float64) *core.Future {
	return s.Call(fillNaFn, fillNaSA, a, c)
}

// EqString registers the a == v mask.
func EqString(s *core.Session, a any, v string) *core.Future {
	return s.Call(eqStrFn, eqStrSA, a, v)
}

var eqStrFn core.Func = func(args []any) (any, error) {
	return frame.EqString(args[0].(*frame.Series), args[1].(string)), nil
}

var eqStrSA = &core.Annotation{FuncName: "sr.eq", Params: []core.Param{
	{Name: "a", Type: core.Generic("S")},
	{Name: "v", Type: core.Missing()},
}, Ret: retExpr(core.Generic("S"))}

// InStrings registers the membership mask for vals.
func InStrings(s *core.Session, a any, vals ...string) *core.Future {
	return s.Call(inStrFn, inStrSA, a, vals)
}

var inStrFn core.Func = func(args []any) (any, error) {
	return frame.InStrings(args[0].(*frame.Series), args[1].([]string)...), nil
}

var inStrSA = &core.Annotation{FuncName: "sr.isin", Params: []core.Param{
	{Name: "a", Type: core.Generic("S")},
	{Name: "vals", Type: core.Missing()},
}, Ret: retExpr(core.Generic("S"))}

// StrSlice registers str.slice(from, to).
func StrSlice(s *core.Session, a any, from, to int) *core.Future {
	return s.Call(strSliceFn, strSliceSA, a, from, to)
}

var strSliceFn core.Func = func(args []any) (any, error) {
	return frame.StrSlice(args[0].(*frame.Series), args[1].(int), args[2].(int)), nil
}

var strSliceSA = &core.Annotation{FuncName: "sr.str.slice", Params: []core.Param{
	{Name: "a", Type: core.Generic("S")},
	{Name: "from", Type: core.Missing()},
	{Name: "to", Type: core.Missing()},
}, Ret: retExpr(core.Generic("S"))}

// StrStartsWith registers the str.startswith mask.
func StrStartsWith(s *core.Session, a any, prefix string) *core.Future {
	return s.Call(strStartsFn, strStartsSA, a, prefix)
}

var strStartsFn core.Func = func(args []any) (any, error) {
	return frame.StrStartsWith(args[0].(*frame.Series), args[1].(string)), nil
}

var strStartsSA = &core.Annotation{FuncName: "sr.str.startswith", Params: []core.Param{
	{Name: "a", Type: core.Generic("S")},
	{Name: "prefix", Type: core.Missing()},
}, Ret: retExpr(core.Generic("S"))}

// StrContains registers the str.contains mask.
func StrContains(s *core.Session, a any, sub string) *core.Future {
	return s.Call(strContainsFn, strContainsSA, a, sub)
}

var strContainsFn core.Func = func(args []any) (any, error) {
	return frame.StrContains(args[0].(*frame.Series), args[1].(string)), nil
}

var strContainsSA = &core.Annotation{FuncName: "sr.str.contains", Params: []core.Param{
	{Name: "a", Type: core.Generic("S")},
	{Name: "sub", Type: core.Missing()},
}, Ret: retExpr(core.Generic("S"))}

// StrLenGt registers the len(a) > n mask.
func StrLenGt(s *core.Session, a any, n int) *core.Future {
	return s.Call(strLenGtFn, strLenGtSA, a, n)
}

var strLenGtFn core.Func = func(args []any) (any, error) {
	return frame.StrLenGt(args[0].(*frame.Series), args[1].(int)), nil
}

var strLenGtSA = &core.Annotation{FuncName: "sr.str.len.gt", Params: []core.Param{
	{Name: "a", Type: core.Generic("S")},
	{Name: "n", Type: core.Missing()},
}, Ret: retExpr(core.Generic("S"))}

// Filter registers boolean-mask filtering of a frame; its output split is
// unknown (§3.2).
func Filter(s *core.Session, df, mask any) *core.Future {
	return s.Call(filterFn, filterSA, df, mask)
}

var filterFn core.Func = func(args []any) (any, error) {
	return frame.Filter(args[0].(*frame.DataFrame), args[1].(*frame.Series)), nil
}

var filterSA = &core.Annotation{FuncName: "df.filter", Params: []core.Param{
	{Name: "df", Type: core.Generic("S")},
	{Name: "mask", Type: core.Generic("T")},
}, Ret: retExpr(core.Unknown())}

// FilterSeries registers boolean-mask filtering of a series.
func FilterSeries(s *core.Session, a, mask any) *core.Future {
	return s.Call(filterSeriesFn, filterSeriesSA, a, mask)
}

var filterSeriesFn core.Func = func(args []any) (any, error) {
	return frame.FilterSeries(args[0].(*frame.Series), args[1].(*frame.Series)), nil
}

var filterSeriesSA = &core.Annotation{FuncName: "sr.filter", Params: []core.Param{
	{Name: "a", Type: core.Generic("S")},
	{Name: "mask", Type: core.Generic("T")},
}, Ret: retExpr(core.Unknown())}

// Col registers column extraction df[name]; row-aligned with the frame, so
// both sides share a pipeline.
func Col(s *core.Session, df any, name string) *core.Future {
	return s.Call(colFn, colSA, df, name)
}

var colFn core.Func = func(args []any) (any, error) {
	return args[0].(*frame.DataFrame).Col(args[1].(string)), nil
}

var colSA = &core.Annotation{FuncName: "df.col", Params: []core.Param{
	{Name: "df", Type: core.Generic("S")},
	{Name: "name", Type: core.Missing()},
}, Ret: retExpr(core.Generic("S"))}

// WithColumn registers df.withColumn(s): the frame and the new column must
// be row-aligned.
func WithColumn(s *core.Session, df, col any) *core.Future {
	return s.Call(withColFn, withColSA, df, col)
}

var withColFn core.Func = func(args []any) (any, error) {
	return args[0].(*frame.DataFrame).WithColumn(args[1].(*frame.Series)), nil
}

var withColSA = &core.Annotation{FuncName: "df.withColumn", Params: []core.Param{
	{Name: "df", Type: core.Generic("S")},
	{Name: "col", Type: core.Generic("T")},
}, Ret: retExpr(core.Generic("S"))}

// SumFloat registers the sum reduction of a float series.
func SumFloat(s *core.Session, a any) *core.Future { return s.Call(sumFn, sumSA, a) }

var sumFn core.Func = func(args []any) (any, error) {
	return frame.SumFloat(args[0].(*frame.Series)), nil
}

var sumSA = &core.Annotation{FuncName: "sr.sum", Params: []core.Param{
	{Name: "a", Type: core.Generic("S")},
}, Ret: retExpr(core.Concrete("AddReduce", AddReduceSplitter{}, core.FixedCtor(core.NewSplitType("AddReduce"))))}

// CountValid registers the non-null count reduction.
func CountValid(s *core.Session, a any) *core.Future { return s.Call(countFn, countSA, a) }

var countFn core.Func = func(args []any) (any, error) {
	return frame.CountValid(args[0].(*frame.Series)), nil
}

var countSA = &core.Annotation{FuncName: "sr.count", Params: []core.Param{
	{Name: "a", Type: core.Generic("S")},
}, Ret: retExpr(core.Concrete("AddReduce", AddReduceSplitter{}, core.FixedCtor(core.NewSplitType("AddReduce"))))}

// Mean registers the mean reduction; the result future holds a
// frame.MeanPartial — use MeanValue to read it as a float64.
func Mean(s *core.Session, a any) *core.Future { return s.Call(meanFn, meanSA, a) }

var meanFn core.Func = func(args []any) (any, error) {
	return frame.Mean(args[0].(*frame.Series)), nil
}

var meanSA = &core.Annotation{FuncName: "sr.mean", Params: []core.Param{
	{Name: "a", Type: core.Generic("S")},
}, Ret: retExpr(core.Concrete("MeanReduce", MeanReduceSplitter{}, core.FixedCtor(core.NewSplitType("MeanReduce"))))}

// MeanValue forces evaluation and unwraps a Mean future.
func MeanValue(f *core.Future) (float64, error) {
	v, err := f.Get()
	if err != nil {
		return 0, err
	}
	return v.(frame.MeanPartial).Value(), nil
}

// GroupByAgg registers a grouped aggregation: chunks aggregate
// independently and the GroupSplit merge re-aggregates the partials. The
// future holds a *frame.Grouped; finalize it with ToDataFrame.
func GroupByAgg(s *core.Session, df any, keys []string, specs []frame.AggSpec) *core.Future {
	return s.Call(groupByFn, groupBySA, df, keys, specs)
}

var groupByFn core.Func = func(args []any) (any, error) {
	return frame.GroupByAgg(args[0].(*frame.DataFrame), args[1].([]string), args[2].([]frame.AggSpec)), nil
}

var groupBySA = &core.Annotation{FuncName: "df.groupby.agg", Params: []core.Param{
	{Name: "df", Type: core.Generic("S")},
	{Name: "keys", Type: core.Missing()},
	{Name: "specs", Type: core.Missing()},
}, Ret: retExpr(core.Concrete("GroupSplit", GroupSplitter{}, core.FixedCtor(core.NewSplitType("GroupSplit"))))}

// ToDataFrame registers finalization of a grouped aggregation (whole call).
func ToDataFrame(s *core.Session, g any) *core.Future {
	return s.Call(toDfFn, toDfSA, g)
}

var toDfFn core.Func = func(args []any) (any, error) {
	return args[0].(*frame.Grouped).ToDataFrame(), nil
}

var toDfSA = &core.Annotation{FuncName: "grouped.toDataFrame", Params: []core.Param{
	{Name: "g", Type: core.Missing()},
}, Ret: retExpr(core.Unknown())}

// JoinIndexed registers a join: the probe frame splits, the index
// broadcasts (§7: "joins split one table and broadcast the other"). The
// output split is unknown.
func JoinIndexed(s *core.Session, left any, ix *frame.Index, leftKey string, how frame.JoinHow) *core.Future {
	return s.Call(joinFn, joinSA, left, ix, leftKey, how)
}

var joinFn core.Func = func(args []any) (any, error) {
	return frame.JoinIndexed(args[0].(*frame.DataFrame), args[1].(*frame.Index), args[2].(string), args[3].(frame.JoinHow)), nil
}

var joinSA = &core.Annotation{FuncName: "df.join", Params: []core.Param{
	{Name: "left", Type: core.Generic("S")},
	{Name: "index", Type: core.Missing()},
	{Name: "leftKey", Type: core.Missing()},
	{Name: "how", Type: core.Missing()},
}, Ret: retExpr(core.Unknown())}

// SortByFloat registers a whole-frame sort (not splittable).
func SortByFloat(s *core.Session, df any, col string, ascending bool) *core.Future {
	return s.Call(sortFn, sortSA, df, col, ascending)
}

var sortFn core.Func = func(args []any) (any, error) {
	return frame.SortByFloat(args[0].(*frame.DataFrame), args[1].(string), args[2].(bool)), nil
}

var sortSA = &core.Annotation{FuncName: "df.sort", Params: []core.Param{
	{Name: "df", Type: core.Missing()},
	{Name: "col", Type: core.Missing()},
	{Name: "asc", Type: core.Missing()},
}, Ret: retExpr(core.Unknown())}

// UniqueStrings registers a whole-series distinct (not splittable: result
// order depends on all rows).
func UniqueStrings(s *core.Session, a any) *core.Future {
	return s.Call(uniqueFn, uniqueSA, a)
}

var uniqueFn core.Func = func(args []any) (any, error) {
	return frame.UniqueStrings(args[0].(*frame.Series)), nil
}

var uniqueSA = &core.Annotation{FuncName: "sr.unique", Params: []core.Param{
	{Name: "a", Type: core.Missing()},
}, Ret: retExpr(core.Unknown())}
