// Package framesa contains the split annotations and splitting API for the
// frame library (the repository's Pandas stand-in), following the paper's
// §7 Pandas integration: DataFrames and Series split by row, a GroupSplit
// split type whose merge re-groups and re-aggregates partial aggregations,
// filters and joins returning the unknown split type, and generics on most
// functions.
package framesa

import (
	"fmt"

	"mozart/internal/core"
	"mozart/internal/frame"
)

// DfSplitter splits a DataFrame into row-range views and merges pieces by
// concatenation.
type DfSplitter struct{}

// InPlace reports that row slices alias column storage.
func (DfSplitter) InPlace() bool { return true }

// Info reports rows and the per-row byte estimate across columns.
func (DfSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	df, ok := v.(*frame.DataFrame)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("framesa: DfSplit over %T", v)
	}
	var bytes int64
	for _, c := range df.Cols {
		bytes += c.ElemBytes()
	}
	return core.RuntimeInfo{Elems: int64(df.NRows()), ElemBytes: bytes}, nil
}

// Split returns rows [start, end) as a view.
func (DfSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.(*frame.DataFrame).Slice(int(start), int(end)), nil
}

// SplitView is the zero-allocation split (core.ViewSplitter): the reuse
// frame's column Series headers are retargeted at the requested row range in
// place, so the steady-state batch loop allocates no frame, no Series, and no
// interface boxes.
func (DfSplitter) SplitView(v any, t core.SplitType, start, end int64, reuse any) (any, error) {
	df := v.(*frame.DataFrame)
	r, ok := reuse.(*frame.DataFrame)
	if !ok || r == df || len(r.Cols) != len(df.Cols) {
		return df.Slice(int(start), int(end)), nil
	}
	for i, c := range df.Cols {
		if r.Cols[i] == c {
			return df.Slice(int(start), int(end)), nil
		}
	}
	for i, c := range df.Cols {
		sliceSeriesInto(r.Cols[i], c, int(start), int(end))
	}
	return reuse, nil
}

// Merge concatenates row chunks. Functions annotated (df: S) -> S, such as
// column extraction, produce Series pieces under a DfSplit-typed value, so
// the merger accepts both frames and series (the annotator owns this
// decision, §3.3). Pieces whose column buffers are contiguous views of one
// backing array (the view-split hot path) are stitched back by reslicing —
// no row data is copied.
func (DfSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	if len(pieces) > 0 {
		if _, isSeries := pieces[0].(*frame.Series); isSeries {
			return (SeriesSplitter{}).Merge(pieces, t)
		}
	}
	dfs := make([]*frame.DataFrame, len(pieces))
	for i, p := range pieces {
		dfs[i] = p.(*frame.DataFrame)
	}
	if out, ok := stitchDF(dfs); ok {
		return out, nil
	}
	return frame.ConcatDF(dfs...), nil
}

// stitchDF reslices frames whose columns are in-order contiguous views of one
// backing array back into a single frame sharing that storage. Reports false
// (caller copies via ConcatDF) on schema mismatch or any discontinuity.
func stitchDF(dfs []*frame.DataFrame) (*frame.DataFrame, bool) {
	if len(dfs) == 0 {
		return nil, false
	}
	first := dfs[0]
	cols := make([]*frame.Series, len(first.Cols))
	parts := make([]*frame.Series, len(dfs))
	for ci, c := range first.Cols {
		for pi, p := range dfs {
			if len(p.Cols) != len(first.Cols) || p.Cols[ci].Name != c.Name {
				return nil, false
			}
			parts[pi] = p.Cols[ci]
		}
		s, ok := stitchSeries(parts)
		if !ok {
			return nil, false
		}
		cols[ci] = s
	}
	return &frame.DataFrame{Cols: cols}, true
}

func dfCtor(v any) (core.SplitType, error) {
	df, ok := v.(*frame.DataFrame)
	if !ok || df == nil {
		return core.SplitType{}, fmt.Errorf("framesa: DfSplit ctor over %T", v)
	}
	return core.NewSplitType("DfSplit", int64(df.NRows())), nil
}

// SeriesSplitter splits a Series into row-range views and merges pieces by
// concatenation.
type SeriesSplitter struct{}

// InPlace reports that slices alias the original storage.
func (SeriesSplitter) InPlace() bool { return true }

// Info reports the series length and per-row bytes.
func (SeriesSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	s, ok := v.(*frame.Series)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("framesa: SeriesSplit over %T", v)
	}
	return core.RuntimeInfo{Elems: int64(s.Len()), ElemBytes: s.ElemBytes()}, nil
}

// Split returns rows [start, end) as a view.
func (SeriesSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.(*frame.Series).Slice(int(start), int(end)), nil
}

// SplitView is the zero-allocation split (core.ViewSplitter): the reuse
// Series header is retargeted at the requested row range in place.
func (SeriesSplitter) SplitView(v any, t core.SplitType, start, end int64, reuse any) (any, error) {
	s := v.(*frame.Series)
	r, ok := reuse.(*frame.Series)
	if !ok || r == s {
		return s.Slice(int(start), int(end)), nil
	}
	sliceSeriesInto(r, s, int(start), int(end))
	return reuse, nil
}

// sliceSeriesInto retargets dst's buffers at src[r0:r1] without allocating,
// the in-place equivalent of src.Slice(r0, r1).
func sliceSeriesInto(dst, src *frame.Series, r0, r1 int) {
	dst.Name, dst.Dtype = src.Name, src.Dtype
	dst.F, dst.I, dst.S, dst.B, dst.Valid = nil, nil, nil, nil, nil
	switch src.Dtype {
	case frame.Float:
		dst.F = src.F[r0:r1]
	case frame.Int:
		dst.I = src.I[r0:r1]
	case frame.String:
		dst.S = src.S[r0:r1]
	case frame.Bool:
		dst.B = src.B[r0:r1]
	}
	if src.Valid != nil {
		dst.Valid = src.Valid[r0:r1]
	}
}

// Merge concatenates row chunks. Pieces whose buffers are contiguous views of
// one backing array are stitched back by reslicing (zero copy); otherwise
// ConcatSeries copies into fresh storage.
func (SeriesSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	ss := make([]*frame.Series, len(pieces))
	for i, p := range pieces {
		ss[i] = p.(*frame.Series)
	}
	if out, ok := stitchSeries(ss); ok {
		return out, nil
	}
	return frame.ConcatSeries(ss...), nil
}

// stitchSeries reslices in-order contiguous row-range views of one backing
// series back into a single Series sharing that storage. All parts must agree
// on dtype and on whether a validity mask is present; any buffer
// discontinuity reports false so the caller copies instead.
func stitchSeries(parts []*frame.Series) (*frame.Series, bool) {
	if len(parts) == 0 {
		return nil, false
	}
	first := parts[0]
	out := &frame.Series{Name: first.Name, Dtype: first.Dtype,
		F: first.F, I: first.I, S: first.S, B: first.B, Valid: first.Valid}
	for _, p := range parts[1:] {
		if p.Dtype != out.Dtype || (p.Valid == nil) != (out.Valid == nil) {
			return nil, false
		}
		var ok bool
		if out.F, ok = extendView(out.F, p.F); !ok {
			return nil, false
		}
		if out.I, ok = extendView(out.I, p.I); !ok {
			return nil, false
		}
		if out.S, ok = extendView(out.S, p.S); !ok {
			return nil, false
		}
		if out.B, ok = extendView(out.B, p.B); !ok {
			return nil, false
		}
		if out.Valid, ok = extendView(out.Valid, p.Valid); !ok {
			return nil, false
		}
	}
	return out, true
}

// extendView reslices a to cover b when b starts exactly where a's view ends
// within the same backing array. The cap check makes the adjacency probe
// (&ext[len(a)] == &b[0]) legal; any mismatch reports false.
func extendView[T any](a, b []T) ([]T, bool) {
	if len(b) == 0 {
		return a, true
	}
	if len(a) == 0 {
		return b, true
	}
	if cap(a) < len(a)+len(b) {
		return nil, false
	}
	ext := a[:len(a)+len(b)]
	if &ext[len(a)] != &b[0] {
		return nil, false
	}
	return ext, true
}

func seriesCtor(v any) (core.SplitType, error) {
	s, ok := v.(*frame.Series)
	if !ok || s == nil {
		return core.SplitType{}, fmt.Errorf("framesa: SeriesSplit ctor over %T", v)
	}
	return core.NewSplitType("SeriesSplit", int64(s.Len())), nil
}

// GroupSplitter is the GroupSplit split type for grouped aggregations: the
// pieces are partial *frame.Grouped aggregations and the merge re-groups
// and re-aggregates them (§7, Pandas).
type GroupSplitter struct{}

// Info treats the partial aggregation as one unit.
func (GroupSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	g, ok := v.(*frame.Grouped)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("framesa: GroupSplit over %T", v)
	}
	return core.RuntimeInfo{Elems: 1, ElemBytes: int64(g.NumGroups()) * 64}, nil
}

// Split is invalid for partial aggregations.
func (GroupSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("framesa: GroupSplit values cannot be split")
}

// Merge combines partial aggregations.
func (GroupSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	if len(pieces) == 0 {
		return (*frame.Grouped)(nil), nil
	}
	acc := pieces[0].(*frame.Grouped)
	for _, p := range pieces[1:] {
		acc = acc.Combine(p.(*frame.Grouped))
	}
	return acc, nil
}

// MeanReduceSplitter merges frame.MeanPartial pieces by summing sums and
// counts.
type MeanReduceSplitter struct{}

// Info treats the partial as one unit.
func (MeanReduceSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: 1, ElemBytes: 16}, nil
}

// Split is invalid for reduction partials.
func (MeanReduceSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("framesa: MeanReduce values cannot be split")
}

// Merge adds partial sums and counts.
func (MeanReduceSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	var acc frame.MeanPartial
	for _, p := range pieces {
		mp := p.(frame.MeanPartial)
		acc.Sum += mp.Sum
		acc.Count += mp.Count
	}
	return acc, nil
}

// AddReduceSplitter merges partial float sums.
type AddReduceSplitter struct{}

// Info reports one scalar.
func (AddReduceSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: 1, ElemBytes: 8}, nil
}

// Split is invalid for reduction partials.
func (AddReduceSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("framesa: AddReduce values cannot be split")
}

// Merge sums partials. Int partials (from CountValid) sum as int64.
func (AddReduceSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	if len(pieces) == 0 {
		return 0.0, nil
	}
	if _, isInt := pieces[0].(int64); isInt {
		var n int64
		for _, p := range pieces {
			n += p.(int64)
		}
		return n, nil
	}
	s := 0.0
	for _, p := range pieces {
		s += p.(float64)
	}
	return s, nil
}

// snapshotSeries copies every buffer of s and returns a closure restoring
// them into the original storage (so row-range views stay aliased).
func snapshotSeries(s *frame.Series) func() {
	f := append([]float64(nil), s.F...)
	i := append([]int64(nil), s.I...)
	str := append([]string(nil), s.S...)
	b := append([]bool(nil), s.B...)
	valid := append([]bool(nil), s.Valid...)
	return func() {
		copy(s.F, f)
		copy(s.I, i)
		copy(s.S, str)
		copy(s.B, b)
		copy(s.Valid, valid)
	}
}

func init() {
	core.RegisterDefaultSplit((*frame.DataFrame)(nil), DfSplitter{}, dfCtor)
	core.RegisterDefaultSplit((*frame.Series)(nil), SeriesSplitter{}, seriesCtor)

	// Snapshot support for whole-call fallback: series and frames are
	// mutated in place through row-range views, so the runtime needs to be
	// able to restore their buffers before re-executing a faulted stage
	// whole.
	core.RegisterSnapshot((*frame.Series)(nil), func(v any) (func() error, error) {
		restore := snapshotSeries(v.(*frame.Series))
		return func() error { restore(); return nil }, nil
	})
	core.RegisterSnapshot((*frame.DataFrame)(nil), func(v any) (func() error, error) {
		df := v.(*frame.DataFrame)
		restores := make([]func(), len(df.Cols))
		for i, c := range df.Cols {
			restores[i] = snapshotSeries(c)
		}
		return func() error {
			for _, r := range restores {
				r()
			}
			return nil
		}, nil
	})
}
