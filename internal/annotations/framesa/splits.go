// Package framesa contains the split annotations and splitting API for the
// frame library (the repository's Pandas stand-in), following the paper's
// §7 Pandas integration: DataFrames and Series split by row, a GroupSplit
// split type whose merge re-groups and re-aggregates partial aggregations,
// filters and joins returning the unknown split type, and generics on most
// functions.
package framesa

import (
	"fmt"

	"mozart/internal/core"
	"mozart/internal/frame"
)

// DfSplitter splits a DataFrame into row-range views and merges pieces by
// concatenation.
type DfSplitter struct{}

// InPlace reports that row slices alias column storage.
func (DfSplitter) InPlace() bool { return true }

// Info reports rows and the per-row byte estimate across columns.
func (DfSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	df, ok := v.(*frame.DataFrame)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("framesa: DfSplit over %T", v)
	}
	var bytes int64
	for _, c := range df.Cols {
		bytes += c.ElemBytes()
	}
	return core.RuntimeInfo{Elems: int64(df.NRows()), ElemBytes: bytes}, nil
}

// Split returns rows [start, end) as a view.
func (DfSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.(*frame.DataFrame).Slice(int(start), int(end)), nil
}

// Merge concatenates row chunks. Functions annotated (df: S) -> S, such as
// column extraction, produce Series pieces under a DfSplit-typed value, so
// the merger accepts both frames and series (the annotator owns this
// decision, §3.3).
func (DfSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	if len(pieces) > 0 {
		if _, isSeries := pieces[0].(*frame.Series); isSeries {
			return (SeriesSplitter{}).Merge(pieces, t)
		}
	}
	dfs := make([]*frame.DataFrame, len(pieces))
	for i, p := range pieces {
		dfs[i] = p.(*frame.DataFrame)
	}
	return frame.ConcatDF(dfs...), nil
}

func dfCtor(v any) (core.SplitType, error) {
	df, ok := v.(*frame.DataFrame)
	if !ok || df == nil {
		return core.SplitType{}, fmt.Errorf("framesa: DfSplit ctor over %T", v)
	}
	return core.NewSplitType("DfSplit", int64(df.NRows())), nil
}

// SeriesSplitter splits a Series into row-range views and merges pieces by
// concatenation.
type SeriesSplitter struct{}

// InPlace reports that slices alias the original storage.
func (SeriesSplitter) InPlace() bool { return true }

// Info reports the series length and per-row bytes.
func (SeriesSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	s, ok := v.(*frame.Series)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("framesa: SeriesSplit over %T", v)
	}
	return core.RuntimeInfo{Elems: int64(s.Len()), ElemBytes: s.ElemBytes()}, nil
}

// Split returns rows [start, end) as a view.
func (SeriesSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.(*frame.Series).Slice(int(start), int(end)), nil
}

// Merge concatenates row chunks.
func (SeriesSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	ss := make([]*frame.Series, len(pieces))
	for i, p := range pieces {
		ss[i] = p.(*frame.Series)
	}
	return frame.ConcatSeries(ss...), nil
}

func seriesCtor(v any) (core.SplitType, error) {
	s, ok := v.(*frame.Series)
	if !ok || s == nil {
		return core.SplitType{}, fmt.Errorf("framesa: SeriesSplit ctor over %T", v)
	}
	return core.NewSplitType("SeriesSplit", int64(s.Len())), nil
}

// GroupSplitter is the GroupSplit split type for grouped aggregations: the
// pieces are partial *frame.Grouped aggregations and the merge re-groups
// and re-aggregates them (§7, Pandas).
type GroupSplitter struct{}

// Info treats the partial aggregation as one unit.
func (GroupSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	g, ok := v.(*frame.Grouped)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("framesa: GroupSplit over %T", v)
	}
	return core.RuntimeInfo{Elems: 1, ElemBytes: int64(g.NumGroups()) * 64}, nil
}

// Split is invalid for partial aggregations.
func (GroupSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("framesa: GroupSplit values cannot be split")
}

// Merge combines partial aggregations.
func (GroupSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	if len(pieces) == 0 {
		return (*frame.Grouped)(nil), nil
	}
	acc := pieces[0].(*frame.Grouped)
	for _, p := range pieces[1:] {
		acc = acc.Combine(p.(*frame.Grouped))
	}
	return acc, nil
}

// MeanReduceSplitter merges frame.MeanPartial pieces by summing sums and
// counts.
type MeanReduceSplitter struct{}

// Info treats the partial as one unit.
func (MeanReduceSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: 1, ElemBytes: 16}, nil
}

// Split is invalid for reduction partials.
func (MeanReduceSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("framesa: MeanReduce values cannot be split")
}

// Merge adds partial sums and counts.
func (MeanReduceSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	var acc frame.MeanPartial
	for _, p := range pieces {
		mp := p.(frame.MeanPartial)
		acc.Sum += mp.Sum
		acc.Count += mp.Count
	}
	return acc, nil
}

// AddReduceSplitter merges partial float sums.
type AddReduceSplitter struct{}

// Info reports one scalar.
func (AddReduceSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: 1, ElemBytes: 8}, nil
}

// Split is invalid for reduction partials.
func (AddReduceSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("framesa: AddReduce values cannot be split")
}

// Merge sums partials. Int partials (from CountValid) sum as int64.
func (AddReduceSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	if len(pieces) == 0 {
		return 0.0, nil
	}
	if _, isInt := pieces[0].(int64); isInt {
		var n int64
		for _, p := range pieces {
			n += p.(int64)
		}
		return n, nil
	}
	s := 0.0
	for _, p := range pieces {
		s += p.(float64)
	}
	return s, nil
}

// snapshotSeries copies every buffer of s and returns a closure restoring
// them into the original storage (so row-range views stay aliased).
func snapshotSeries(s *frame.Series) func() {
	f := append([]float64(nil), s.F...)
	i := append([]int64(nil), s.I...)
	str := append([]string(nil), s.S...)
	b := append([]bool(nil), s.B...)
	valid := append([]bool(nil), s.Valid...)
	return func() {
		copy(s.F, f)
		copy(s.I, i)
		copy(s.S, str)
		copy(s.B, b)
		copy(s.Valid, valid)
	}
}

func init() {
	core.RegisterDefaultSplit((*frame.DataFrame)(nil), DfSplitter{}, dfCtor)
	core.RegisterDefaultSplit((*frame.Series)(nil), SeriesSplitter{}, seriesCtor)

	// Snapshot support for whole-call fallback: series and frames are
	// mutated in place through row-range views, so the runtime needs to be
	// able to restore their buffers before re-executing a faulted stage
	// whole.
	core.RegisterSnapshot((*frame.Series)(nil), func(v any) (func() error, error) {
		restore := snapshotSeries(v.(*frame.Series))
		return func() error { restore(); return nil }, nil
	})
	core.RegisterSnapshot((*frame.DataFrame)(nil), func(v any) (func() error, error) {
		df := v.(*frame.DataFrame)
		restores := make([]func(), len(df.Cols))
		for i, c := range df.Cols {
			restores[i] = snapshotSeries(c)
		}
		return func() error {
			for _, r := range restores {
				r()
			}
			return nil
		}, nil
	})
}
