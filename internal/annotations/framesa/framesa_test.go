package framesa_test

import (
	"math"
	"math/rand"
	"testing"

	"mozart/internal/annotations/framesa"
	"mozart/internal/core"
	"mozart/internal/frame"
)

func sess() *core.Session { return core.NewSession(core.Options{Workers: 3, BatchElems: 41}) }

func testFrame(n int, seed int64) *frame.DataFrame {
	rng := rand.New(rand.NewSource(seed))
	city := make([]string, n)
	pop := make([]float64, n)
	crime := make([]float64, n)
	year := make([]int64, n)
	for i := 0; i < n; i++ {
		city[i] = []string{"NYC", "SF", "LA", "CHI"}[rng.Intn(4)]
		pop[i] = rng.Float64() * 1e6
		crime[i] = rng.Float64() * 1000
		year[i] = int64(2000 + rng.Intn(5))
	}
	return frame.NewDataFrame(
		frame.NewString("city", city),
		frame.NewFloat("pop", pop),
		frame.NewFloat("crime", crime),
		frame.NewInt("year", year),
	)
}

// TestSeriesPipeline: arithmetic chain over series pipelines in one stage.
func TestSeriesPipeline(t *testing.T) {
	df := testFrame(500, 1)
	pop, crime := df.Col("pop"), df.Col("crime")
	want := frame.DivSeries(frame.AddSeries(pop, crime), frame.MulScalar(pop, 2))

	s := sess()
	f := framesa.DivSeries(s,
		framesa.AddSeries(s, pop, crime),
		framesa.MulScalar(s, pop, 2))
	v, err := f.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*frame.Series)
	for i := range want.F {
		if math.Abs(got.F[i]-want.F[i]) > 1e-12 {
			t.Fatalf("row %d", i)
		}
	}
	if s.Stats().Stages != 1 {
		t.Errorf("want 1 stage, got %d", s.Stats().Stages)
	}
}

// TestFilterPipeline: masks build and filter in one stage; result split is
// unknown but still flows into further series ops.
func TestFilterPipeline(t *testing.T) {
	df := testFrame(800, 2)
	mask := frame.And(frame.GtScalar(df.Col("pop"), 300000), frame.LtScalar(df.Col("crime"), 500))
	want := frame.Filter(df, mask)
	wantSum := frame.SumFloat(want.Col("crime"))

	s := sess()
	m := framesa.And(s,
		framesa.GtScalar(s, df.Col("pop"), 300000),
		framesa.LtScalar(s, df.Col("crime"), 500))
	filtered := framesa.Filter(s, df, m).Keep() // inspected below
	crimeCol := framesa.Col(s, filtered, "crime")
	total := framesa.SumFloat(s, crimeCol)

	got, err := total.Float64()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-wantSum) > 1e-7*(1+wantSum) {
		t.Fatalf("sum = %v want %v", got, wantSum)
	}
	v, err := filtered.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v.(*frame.DataFrame).NRows() != want.NRows() {
		t.Fatalf("filtered rows %d want %d", v.(*frame.DataFrame).NRows(), want.NRows())
	}
	if s.Stats().Stages != 1 {
		t.Errorf("filter pipeline should be 1 stage, got %d", s.Stats().Stages)
	}
}

// TestStringOpsAndNulls: the Data Cleaning operator mix.
func TestStringOpsAndNulls(t *testing.T) {
	zips := frame.NewString("zip", []string{"10001-123", "NO CLUE", "94103", "0", "9021"})
	s := sess()
	sliced := framesa.StrSlice(s, zips, 0, 5)
	bad := framesa.Or(s,
		framesa.InStrings(s, sliced, "NO CL", "N/A"),
		framesa.EqString(s, sliced, "0"))
	cleaned := framesa.MaskToNull(s, sliced, bad)
	nulls := framesa.IsNull(s, cleaned)

	v, err := nulls.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*frame.Series)
	wantNull := []bool{false, true, false, true, false}
	for i := range wantNull {
		if got.B[i] != wantNull[i] {
			t.Fatalf("null[%d] = %v", i, got.B[i])
		}
	}
	if s.Stats().Stages != 1 {
		t.Errorf("cleaning should pipeline, got %d stages", s.Stats().Stages)
	}
}

// TestMeanAndCount reductions.
func TestMeanAndCount(t *testing.T) {
	df := testFrame(1000, 3)
	s := sess()
	mean := framesa.Mean(s, df.Col("crime"))
	got, err := framesa.MeanValue(mean)
	if err != nil {
		t.Fatal(err)
	}
	want := frame.Mean(df.Col("crime")).Value()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v want %v", got, want)
	}
	cnt, err := framesa.CountValid(s, df.Col("pop")).Int64()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 1000 {
		t.Fatalf("count = %d", cnt)
	}
}

// TestGroupByParallel: grouped aggregation over split chunks merges to the
// same result as whole-frame aggregation.
func TestGroupByParallel(t *testing.T) {
	df := testFrame(2000, 4)
	keys := []string{"city", "year"}
	specs := []frame.AggSpec{
		{Col: "crime", Kind: frame.AggSum, As: "total"},
		{Col: "crime", Kind: frame.AggMean, As: "avg"},
		{Col: "pop", Kind: frame.AggMax, As: "maxpop"},
	}
	want := frame.GroupByAgg(df, keys, specs).ToDataFrame()

	s := sess()
	g := framesa.GroupByAgg(s, df, keys, specs)
	out := framesa.ToDataFrame(s, g)
	v, err := out.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*frame.DataFrame)
	if got.NRows() != want.NRows() {
		t.Fatalf("groups %d want %d", got.NRows(), want.NRows())
	}
	for r := 0; r < got.NRows(); r++ {
		if got.Col("city").S[r] != want.Col("city").S[r] ||
			got.Col("year").I[r] != want.Col("year").I[r] ||
			math.Abs(got.Col("total").F[r]-want.Col("total").F[r]) > 1e-7 ||
			math.Abs(got.Col("avg").F[r]-want.Col("avg").F[r]) > 1e-9 ||
			got.Col("maxpop").F[r] != want.Col("maxpop").F[r] {
			t.Fatalf("group row %d differs", r)
		}
	}
}

// TestJoinBroadcast: a split probe joined against a broadcast index.
func TestJoinBroadcast(t *testing.T) {
	users := frame.NewDataFrame(
		frame.NewInt("userId", []int64{1, 2, 3, 4}),
		frame.NewString("gender", []string{"F", "M", "F", "M"}),
	)
	n := 1000
	rng := rand.New(rand.NewSource(5))
	uid := make([]int64, n)
	rating := make([]float64, n)
	for i := range uid {
		uid[i] = int64(rng.Intn(5) + 1) // includes unmatched id 5
		rating[i] = float64(rng.Intn(5) + 1)
	}
	ratings := frame.NewDataFrame(frame.NewInt("userId", uid), frame.NewFloat("rating", rating))
	ix := frame.NewIndex(users, "userId")
	want := frame.JoinIndexed(ratings, ix, "userId", frame.Inner)

	s := sess()
	j := framesa.JoinIndexed(s, ratings, ix, "userId", frame.Inner)
	v, err := j.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*frame.DataFrame)
	if got.NRows() != want.NRows() {
		t.Fatalf("join rows %d want %d", got.NRows(), want.NRows())
	}
	for r := 0; r < got.NRows(); r++ {
		if got.Col("gender").S[r] != want.Col("gender").S[r] ||
			got.Col("rating").F[r] != want.Col("rating").F[r] {
			t.Fatalf("join row %d differs", r)
		}
	}
}

// TestJoinThenGroupPipeline: join output (unknown split) pipelines into a
// grouped aggregation, the MovieLens structure.
func TestJoinThenGroupPipeline(t *testing.T) {
	users := frame.NewDataFrame(
		frame.NewInt("userId", []int64{1, 2, 3}),
		frame.NewString("gender", []string{"F", "M", "F"}),
	)
	n := 600
	rng := rand.New(rand.NewSource(6))
	uid := make([]int64, n)
	rating := make([]float64, n)
	for i := range uid {
		uid[i] = int64(rng.Intn(3) + 1)
		rating[i] = float64(rng.Intn(5) + 1)
	}
	ratings := frame.NewDataFrame(frame.NewInt("userId", uid), frame.NewFloat("rating", rating))
	ix := frame.NewIndex(users, "userId")
	specs := []frame.AggSpec{{Col: "rating", Kind: frame.AggMean, As: "avg"}}
	want := frame.GroupByAgg(frame.JoinIndexed(ratings, ix, "userId", frame.Inner), []string{"gender"}, specs).ToDataFrame()

	s := sess()
	j := framesa.JoinIndexed(s, ratings, ix, "userId", frame.Inner)
	g := framesa.GroupByAgg(s, j, []string{"gender"}, specs)
	out := framesa.ToDataFrame(s, g)
	v, err := out.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*frame.DataFrame)
	if got.NRows() != want.NRows() {
		t.Fatalf("rows %d want %d", got.NRows(), want.NRows())
	}
	for r := 0; r < got.NRows(); r++ {
		if got.Col("gender").S[r] != want.Col("gender").S[r] ||
			math.Abs(got.Col("avg").F[r]-want.Col("avg").F[r]) > 1e-9 {
			t.Fatalf("row %d differs", r)
		}
	}
	// Join and groupby pipeline (stage 1); toDataFrame runs whole (stage 2).
	if s.Stats().Stages != 2 {
		t.Errorf("want 2 stages, got %d", s.Stats().Stages)
	}
}

// TestSortAndUniqueWhole: whole-frame calls break pipelines but compose.
func TestSortAndUniqueWhole(t *testing.T) {
	df := testFrame(200, 7)
	s := sess()
	sorted := framesa.SortByFloat(s, df, "crime", false)
	v, err := sorted.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*frame.DataFrame).Col("crime").F
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1] {
			t.Fatal("not sorted descending")
		}
	}
	u, err := framesa.UniqueStrings(s, df.Col("city")).Get()
	if err != nil {
		t.Fatal(err)
	}
	if len(u.([]string)) != 4 {
		t.Fatalf("unique cities = %d", len(u.([]string)))
	}
}

// TestWithColumnPipeline: derived column attached within a pipeline.
func TestWithColumnPipeline(t *testing.T) {
	df := testFrame(300, 8)
	want := df.WithColumn(frame.MulScalar(df.Col("crime"), 0.001).Clone())
	want.Col("crime") // sanity

	s := sess()
	idx := framesa.MulScalar(s, df.Col("crime"), 0.001)
	out := framesa.WithColumn(s, df, idx)
	v, err := out.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*frame.DataFrame)
	if got.NCols() != df.NCols() { // crime replaced (same name)
		t.Fatalf("cols = %d", got.NCols())
	}
	for i, x := range got.Col("crime").F {
		if math.Abs(x-df.Col("crime").F[i]*0.001) > 1e-12 {
			t.Fatalf("row %d", i)
		}
	}
}

// TestRemainingSeriesWrappers drives the wrappers not covered elsewhere.
func TestRemainingSeriesWrappers(t *testing.T) {
	df := testFrame(400, 9)
	pop, crime := df.Col("pop"), df.Col("crime")
	city := df.Col("city")

	check := func(name string, f *core.Future, want *frame.Series) {
		t.Helper()
		v, err := f.Get()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := v.(*frame.Series)
		if got.Len() != want.Len() {
			t.Fatalf("%s: len", name)
		}
		for i := 0; i < got.Len(); i++ {
			switch want.Dtype {
			case frame.Float:
				if math.Abs(got.F[i]-want.F[i]) > 1e-12 && !(math.IsNaN(got.F[i]) && math.IsNaN(want.F[i])) {
					t.Fatalf("%s: row %d", name, i)
				}
			case frame.Bool:
				if got.B[i] != want.B[i] {
					t.Fatalf("%s: row %d", name, i)
				}
			case frame.String:
				if got.S[i] != want.S[i] {
					t.Fatalf("%s: row %d", name, i)
				}
			}
		}
	}

	s := sess()
	check("SubSeries", framesa.SubSeries(s, pop, crime), frame.SubSeries(pop, crime))
	check("MulSeries", framesa.MulSeries(s, pop, crime), frame.MulSeries(pop, crime))
	check("AddScalar", framesa.AddScalar(s, pop, 5), frame.AddScalar(pop, 5))
	check("SubScalar", framesa.SubScalar(s, pop, 5), frame.SubScalar(pop, 5))
	check("DivScalar", framesa.DivScalar(s, pop, 5), frame.DivScalar(pop, 5))
	check("GeScalar", framesa.GeScalar(s, pop, 500000), frame.GeScalar(pop, 500000))
	check("Not", framesa.Not(s, framesa.GtScalar(s, pop, 500000)), frame.Not(frame.GtScalar(pop, 500000)))
	check("FillNullFloat", framesa.FillNullFloat(s, pop, 0), frame.FillNullFloat(pop, 0))
	check("StrStartsWith", framesa.StrStartsWith(s, city, "N"), frame.StrStartsWith(city, "N"))
	check("StrContains", framesa.StrContains(s, city, "F"), frame.StrContains(city, "F"))
	check("FilterSeries",
		framesa.FilterSeries(s, pop, framesa.GtScalar(s, crime, 500)),
		frame.FilterSeries(pop, frame.GtScalar(crime, 500)))
	sum := framesa.SumFloat(s, pop)
	got, err := sum.Float64()
	if err != nil {
		t.Fatal(err)
	}
	if want := frame.SumFloat(pop); math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("SumFloat")
	}
}

// TestFrameSplitterErrorPaths covers the splitting API type checks.
func TestFrameSplitterErrorPaths(t *testing.T) {
	if _, err := (framesa.DfSplitter{}).Info(1, core.NewSplitType("DfSplit")); err == nil {
		t.Error("DfSplit Info should reject non-frames")
	}
	if _, err := (framesa.SeriesSplitter{}).Info(1, core.NewSplitType("SeriesSplit")); err == nil {
		t.Error("SeriesSplit Info should reject non-series")
	}
	if _, err := (framesa.GroupSplitter{}).Info(1, core.NewSplitType("GroupSplit")); err == nil {
		t.Error("GroupSplit Info should reject non-grouped values")
	}
	if _, err := (framesa.GroupSplitter{}).Split(nil, core.NewSplitType("GroupSplit"), 0, 1); err == nil {
		t.Error("group partials must not split")
	}
	if _, err := (framesa.MeanReduceSplitter{}).Split(nil, core.NewSplitType("MeanReduce"), 0, 1); err == nil {
		t.Error("mean partials must not split")
	}
	if _, err := (framesa.AddReduceSplitter{}).Split(nil, core.NewSplitType("AddReduce"), 0, 1); err == nil {
		t.Error("sum partials must not split")
	}
	// Int64 partial merge path (CountValid).
	m, err := (framesa.AddReduceSplitter{}).Merge([]any{int64(2), int64(3)}, core.NewSplitType("AddReduce"))
	if err != nil || m.(int64) != 5 {
		t.Error("int64 partial merge")
	}
	if m, err := (framesa.AddReduceSplitter{}).Merge(nil, core.NewSplitType("AddReduce")); err != nil || m.(float64) != 0 {
		t.Error("empty merge")
	}
}
