package framesa_test

import (
	"math"
	"testing"

	"mozart/internal/annotations/framesa"
	"mozart/internal/core"
	"mozart/internal/faultinject"
	"mozart/internal/frame"
)

// faultyAddSeries builds an annotated series addition whose function and
// series splitter run through the injector.
func faultyAddSeries(inj *faultinject.Injector, site string) (core.Func, *core.Annotation) {
	fn := inj.WrapFunc(site, func(args []any) (any, error) {
		return frame.AddSeries(args[0].(*frame.Series), args[1].(*frame.Series)), nil
	})
	sexpr := core.Concrete("SeriesSplit", inj.WrapSplitter(site, framesa.SeriesSplitter{}), func(args []any) (core.SplitType, error) {
		s, ok := args[0].(*frame.Series)
		if !ok || s == nil {
			return core.SplitType{}, nil
		}
		return core.NewSplitType("SeriesSplit", int64(s.Len())), nil
	})
	ret := sexpr
	sa := &core.Annotation{FuncName: site, Params: []core.Param{
		{Name: "a", Type: sexpr},
		{Name: "b", Type: sexpr},
	}, Ret: &ret}
	return fn, sa
}

// TestInjectedPanicFallbackSeries: a panic injected into one batch of a
// series operation degrades to whole-call execution and matches the direct
// frame result exactly.
func TestInjectedPanicFallbackSeries(t *testing.T) {
	df := testFrame(500, 11)
	pop, crime := df.Col("pop"), df.Col("crime")
	want := frame.AddSeries(pop, crime)

	inj := faultinject.New(3)
	fn, sa := faultyAddSeries(inj, "sr.add")
	inj.PanicOnNthCall("sr.add", 2)

	s := core.NewSession(core.Options{Workers: 3, BatchElems: 41, FallbackPolicy: core.FallbackWholeCall})
	fut := s.Call(fn, sa, pop, crime)
	v, err := fut.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	got := v.(*frame.Series)
	if got.Len() != want.Len() {
		t.Fatalf("len %d vs %d", got.Len(), want.Len())
	}
	for i := range want.F {
		if math.Abs(got.F[i]-want.F[i]) > 1e-12 {
			t.Fatalf("row %d: %v vs %v", i, got.F[i], want.F[i])
		}
	}
	st := s.Stats()
	if st.RecoveredPanics < 1 || st.FallbackStages != 1 {
		t.Errorf("stats = %+v, want >=1 recovered panic and exactly 1 fallback stage", st)
	}
}
