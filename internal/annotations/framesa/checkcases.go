package framesa

import (
	"math"
	"math/rand"

	"mozart/internal/annotations/checksuite"
	"mozart/internal/core"
	"mozart/internal/frame"
)

// CheckCases exposes representative annotation/function pairs — binary,
// unary, and scalar series shapes, including null handling — for the
// repository-wide soundness suite in internal/annotations/checksuite.
func CheckCases() []checksuite.Case {
	series := func(name string, n int, seed int64) *frame.Series {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, n)
		valid := make([]bool, n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
			valid[i] = rng.Intn(10) != 0
		}
		s := frame.NewFloat(name, vals)
		s.Valid = valid
		return s
	}
	genBinary := func(seed int64) []any {
		return []any{series("a", 219, seed), series("b", 219, seed+1)}
	}
	genUnary := func(seed int64) []any { return []any{series("a", 173, seed)} }
	genScalar := func(seed int64) []any { return []any{series("a", 147, seed), 3.5} }
	eq := func(got, want any) bool {
		g, ok1 := got.(*frame.Series)
		w, ok2 := want.(*frame.Series)
		if !ok1 || !ok2 || g.Dtype != w.Dtype || g.Len() != w.Len() {
			return false
		}
		for i := 0; i < g.Len(); i++ {
			if g.IsValid(i) != w.IsValid(i) {
				return false
			}
			if !g.IsValid(i) {
				continue
			}
			switch g.Dtype {
			case frame.Float:
				if g.F[i] != w.F[i] && !(math.IsNaN(g.F[i]) && math.IsNaN(w.F[i])) {
					return false
				}
			case frame.Int:
				if g.I[i] != w.I[i] {
					return false
				}
			case frame.String:
				if g.S[i] != w.S[i] {
					return false
				}
			case frame.Bool:
				if g.B[i] != w.B[i] {
					return false
				}
			}
		}
		return true
	}
	cfg := core.CheckConfig{Trials: 6, MaxBatch: 64}
	return []checksuite.Case{
		{Name: "sr.add", CheckSpec: core.CheckSpec{Fn: addFn, Annotation: addSA, Gen: genBinary, Eq: eq, Config: cfg}},
		{Name: "sr.div", CheckSpec: core.CheckSpec{Fn: divFn, Annotation: divSA, Gen: genBinary, Eq: eq, Config: cfg}},
		{Name: "sr.isnull", CheckSpec: core.CheckSpec{Fn: isNullFn, Annotation: isNullSA, Gen: genUnary, Eq: eq, Config: cfg}},
		{Name: "sr.gt", CheckSpec: core.CheckSpec{Fn: gtFn, Annotation: gtSA, Gen: genScalar, Eq: eq, Config: cfg}},
		{Name: "sr.fillna", CheckSpec: core.CheckSpec{Fn: fillNaFn, Annotation: fillNaSA, Gen: genScalar, Eq: eq, Config: cfg}},
	}
}
