package vmathsa

import (
	"math/rand"

	"mozart/internal/annotations/checksuite"
	"mozart/internal/core"
	"mozart/internal/vmath"
)

// CheckCases exposes representative annotation/function pairs — one per
// wrapper shape (binary, unary, scalar, reduction, matrix) — for the
// repository-wide soundness suite in internal/annotations/checksuite.
func CheckCases() []checksuite.Case {
	vec := func(n int, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()*3 + 0.5
		}
		return v
	}
	genBinary := func(seed int64) []any {
		const n = 257
		return []any{n, vec(n, seed), vec(n, seed+1), make([]float64, n)}
	}
	genUnary := func(seed int64) []any {
		const n = 193
		return []any{n, vec(n, seed), make([]float64, n)}
	}
	genScalar := func(seed int64) []any {
		const n = 161
		return []any{n, vec(n, seed), 2.25, make([]float64, n)}
	}
	genReduce := func(seed int64) []any {
		const n = 311
		return []any{n, vec(n, seed)}
	}
	genMat := func(seed int64) []any {
		const rows, cols = 37, 5
		a := vmath.MatrixFrom(rows, cols, vec(rows*cols, seed))
		b := vmath.MatrixFrom(rows, cols, vec(rows*cols, seed+1))
		return []any{a, b, vmath.NewMatrix(rows, cols)}
	}
	matEq := func(got, want any) bool {
		g, ok1 := got.(*vmath.Matrix)
		w, ok2 := want.(*vmath.Matrix)
		return ok1 && ok2 && g.Rows == w.Rows && g.Cols == w.Cols &&
			checksuite.FloatsEq(g.Data, w.Data)
	}
	cfg := core.CheckConfig{Trials: 6, MaxBatch: 64}
	return []checksuite.Case{
		{Name: "vdAdd", CheckSpec: core.CheckSpec{Fn: addFn, Annotation: addSA, Gen: genBinary, Eq: checksuite.FloatsEq, Config: cfg}},
		{Name: "vdDiv", CheckSpec: core.CheckSpec{Fn: divFn, Annotation: divSA, Gen: genBinary, Eq: checksuite.FloatsEq, Config: cfg}},
		{Name: "vdSqrt", CheckSpec: core.CheckSpec{Fn: sqrtFn, Annotation: sqrtSA, Gen: genUnary, Eq: checksuite.FloatsEq, Config: cfg}},
		{Name: "vdLog1p", CheckSpec: core.CheckSpec{Fn: log1pFn, Annotation: log1pSA, Gen: genUnary, Eq: checksuite.FloatsEq, Config: cfg}},
		{Name: "vdAddC", CheckSpec: core.CheckSpec{Fn: addcFn, Annotation: addcSA, Gen: genScalar, Eq: checksuite.FloatsEq, Config: cfg}},
		{Name: "vdSum", CheckSpec: core.CheckSpec{Fn: sumFn, Annotation: sumSA, Gen: genReduce, Eq: checksuite.FloatsEq, Config: cfg}},
		{Name: "vdMaxReduce", CheckSpec: core.CheckSpec{Fn: maxFn, Annotation: maxSA, Gen: genReduce, Eq: checksuite.FloatsEq, Config: cfg}},
		{Name: "matAdd", CheckSpec: core.CheckSpec{Fn: matAddFn, Annotation: matAddSA, Gen: genMat, Eq: matEq, Config: cfg}},
	}
}
