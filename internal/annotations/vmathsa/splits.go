// Package vmathsa contains the split annotations and splitting API for the
// vmath library (the repository's Intel MKL stand-in), written exactly the
// way the paper's §7 "Intel MKL" integration describes: one split type for
// arrays, one for matrices, one for the size argument, and reduction split
// types whose only interesting operation is the merge. The library itself
// (internal/vmath) is untouched.
package vmathsa

import (
	"encoding/binary"
	"fmt"
	"math"

	"mozart/internal/core"
	"mozart/internal/vmath"
)

// ArraySplitter splits []float64 into sub-slice views. Pieces alias the
// source, so mutations are in place and no merge is needed for mut
// arguments; merge concatenates for returned values.
type ArraySplitter struct{}

// InPlace reports that pieces alias the original storage.
func (ArraySplitter) InPlace() bool { return true }

// Info reports one 8-byte element per float64.
func (ArraySplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	a, ok := v.([]float64)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("vmathsa: ArraySplit over %T", v)
	}
	return core.RuntimeInfo{Elems: int64(len(a)), ElemBytes: 8}, nil
}

// Split returns the sub-slice [start, end).
func (ArraySplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	a := v.([]float64)
	if end > int64(len(a)) {
		return nil, fmt.Errorf("vmathsa: split [%d,%d) beyond len %d", start, end, len(a))
	}
	return a[start:end], nil
}

// SplitView is the zero-allocation split (core.ViewSplitter): when the reuse
// slot already holds the identical sub-slice view, it is returned unchanged so
// the runtime skips even the interface re-boxing; otherwise the view is
// resliced fresh.
func (ArraySplitter) SplitView(v any, t core.SplitType, start, end int64, reuse any) (any, error) {
	a := v.([]float64)
	if end > int64(len(a)) {
		return nil, fmt.Errorf("vmathsa: split [%d,%d) beyond len %d", start, end, len(a))
	}
	if r, ok := reuse.([]float64); ok && int64(len(r)) == end-start {
		if end == start || &r[0] == &a[start] {
			return reuse, nil
		}
	}
	return a[start:end], nil
}

// Merge concatenates pieces. Pieces that are contiguous views of one backing
// array (the view-split hot path) are stitched back by reslicing — no copy,
// no allocation beyond the result header. Otherwise pieces are copied into a
// fresh slice; the fallback never appends into a piece's backing array, which
// would clobber source data the pieces alias.
func (ArraySplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	if out, ok := stitchFloats(pieces); ok {
		return out, nil
	}
	n := 0
	for _, p := range pieces {
		n += len(p.([]float64))
	}
	if n == 0 {
		return []float64(nil), nil
	}
	out := make([]float64, 0, n)
	for _, p := range pieces {
		out = append(out, p.([]float64)...)
	}
	return out, nil
}

// stitchFloats reslices in-order contiguous views of a single backing array
// back into one slice. It reports false when any adjacent pair is not
// physically adjacent (&ext[len(a)] == &b[0] is the adjacency probe — legal
// because cap is checked first) so the caller copies instead.
func stitchFloats(pieces []any) ([]float64, bool) {
	if len(pieces) == 0 {
		return nil, false
	}
	out, ok := pieces[0].([]float64)
	if !ok {
		return nil, false
	}
	for _, p := range pieces[1:] {
		next, ok := p.([]float64)
		if !ok {
			return nil, false
		}
		if len(next) == 0 {
			continue
		}
		if len(out) == 0 {
			out = next
			continue
		}
		if cap(out) < len(out)+len(next) {
			return nil, false
		}
		ext := out[:len(out)+len(next)]
		if &ext[len(out)] != &next[0] {
			return nil, false
		}
		out = ext
	}
	return out, true
}

// SplitAt returns the window view [start, end) for out-of-core streaming
// (core.SplitterAt). For slices a window view is just the sub-slice; the
// streaming executor then drives Split/Info over it window-locally.
func (ArraySplitter) SplitAt(v any, t core.SplitType, start, end int64) (any, error) {
	return ArraySplitter{}.Split(v, t, start, end)
}

// EncodePiece serializes a merged []float64 partial into a spill frame
// (core.PieceCodec): little-endian float64 bits, 8 bytes per element.
func (ArraySplitter) EncodePiece(piece any, t core.SplitType) ([]byte, error) {
	a, ok := piece.([]float64)
	if !ok {
		return nil, fmt.Errorf("vmathsa: encode %T as ArraySplit piece", piece)
	}
	buf := make([]byte, 8*len(a))
	for i, x := range a {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf, nil
}

// DecodePiece deserializes a spill frame back into a []float64 partial.
func (ArraySplitter) DecodePiece(frame []byte, t core.SplitType) (any, error) {
	if len(frame)%8 != 0 {
		return nil, fmt.Errorf("vmathsa: spill frame length %d not a multiple of 8", len(frame))
	}
	out := make([]float64, len(frame)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(frame[8*i:]))
	}
	return out, nil
}

// ArraySplit is the ArraySplit(size) constructor: the split type's single
// parameter is the value of the size argument at position sizeIdx.
func ArraySplit(sizeIdx int) core.TypeExpr {
	return core.Concrete("ArraySplit", ArraySplitter{}, func(args []any) (core.SplitType, error) {
		n, ok := args[sizeIdx].(int)
		if !ok {
			return core.SplitType{}, fmt.Errorf("vmathsa: ArraySplit ctor: arg %d is %T, want int", sizeIdx, args[sizeIdx])
		}
		return core.NewSplitType("ArraySplit", int64(n)), nil
	})
}

// SizeSplitter splits an int length into per-piece lengths.
type SizeSplitter struct{}

// Info reports the length itself as the element count.
func (SizeSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	n, ok := v.(int)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("vmathsa: SizeSplit over %T", v)
	}
	return core.RuntimeInfo{Elems: int64(n), ElemBytes: 0}, nil
}

// Split yields the piece's length.
func (SizeSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return int(end - start), nil
}

// Merge sums the piece lengths back into the total.
func (SizeSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	n := 0
	for _, p := range pieces {
		n += p.(int)
	}
	return n, nil
}

// SizeSplit is the SizeSplit(size) constructor.
func SizeSplit(sizeIdx int) core.TypeExpr {
	return core.Concrete("SizeSplit", SizeSplitter{}, func(args []any) (core.SplitType, error) {
		n, ok := args[sizeIdx].(int)
		if !ok {
			return core.SplitType{}, fmt.Errorf("vmathsa: SizeSplit ctor: arg %d is %T, want int", sizeIdx, args[sizeIdx])
		}
		return core.NewSplitType("SizeSplit", int64(n)), nil
	})
}

// MatrixSplitter splits a *vmath.Matrix into row-band views (zero copy).
type MatrixSplitter struct{}

// InPlace reports that row bands alias the original storage.
func (MatrixSplitter) InPlace() bool { return true }

// Info reports one element per row.
func (MatrixSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	m, ok := v.(*vmath.Matrix)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("vmathsa: MatrixSplit over %T", v)
	}
	return core.RuntimeInfo{Elems: int64(m.Rows), ElemBytes: int64(m.Cols) * 8}, nil
}

// Split returns the row band [start, end).
func (MatrixSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.(*vmath.Matrix).RowBand(int(start), int(end)), nil
}

// SplitView is the zero-allocation split (core.ViewSplitter): the reuse slot's
// *Matrix header is retargeted at the requested row band in place, so the
// steady-state batch loop allocates neither the header nor the interface box.
func (MatrixSplitter) SplitView(v any, t core.SplitType, start, end int64, reuse any) (any, error) {
	m := v.(*vmath.Matrix)
	if start < 0 || end < start || end > int64(m.Rows) {
		return nil, fmt.Errorf("vmathsa: matrix split [%d,%d) beyond rows %d", start, end, m.Rows)
	}
	band := m.Data[start*int64(m.Cols) : end*int64(m.Cols)]
	if r, ok := reuse.(*vmath.Matrix); ok && r != m {
		r.Rows = int(end - start)
		r.Cols = m.Cols
		r.Data = band
		return reuse, nil
	}
	return &vmath.Matrix{Rows: int(end - start), Cols: m.Cols, Data: band}, nil
}

// Merge stacks row bands back into one matrix. Bands that are contiguous
// views of one backing array are stitched by reslicing (zero copy); otherwise
// the data is copied into a fresh backing array — never appended into a
// piece's own backing, which the pieces may alias.
func (MatrixSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	if len(pieces) == 0 {
		return &vmath.Matrix{}, nil
	}
	if out, ok := stitchMatrices(pieces); ok {
		return out, nil
	}
	first := pieces[0].(*vmath.Matrix)
	rows, n := 0, 0
	for _, p := range pieces {
		m := p.(*vmath.Matrix)
		rows += m.Rows
		n += len(m.Data)
	}
	out := &vmath.Matrix{Rows: rows, Cols: first.Cols, Data: make([]float64, 0, n)}
	for _, p := range pieces {
		out.Data = append(out.Data, p.(*vmath.Matrix).Data...)
	}
	return out, nil
}

// stitchMatrices reslices in-order contiguous row-band views of one backing
// array back into a single matrix sharing that storage. Reports false (caller
// copies) on any column mismatch or physical discontinuity.
func stitchMatrices(pieces []any) (*vmath.Matrix, bool) {
	first, ok := pieces[0].(*vmath.Matrix)
	if !ok {
		return nil, false
	}
	data, rows, cols := first.Data, first.Rows, first.Cols
	for _, p := range pieces[1:] {
		m, ok := p.(*vmath.Matrix)
		if !ok || m.Cols != cols {
			return nil, false
		}
		rows += m.Rows
		if len(m.Data) == 0 {
			continue
		}
		if len(data) == 0 {
			data = m.Data
			continue
		}
		if cap(data) < len(data)+len(m.Data) {
			return nil, false
		}
		ext := data[:len(data)+len(m.Data)]
		if &ext[len(data)] != &m.Data[0] {
			return nil, false
		}
		data = ext
	}
	return &vmath.Matrix{Rows: rows, Cols: cols, Data: data}, true
}

// MatrixSplit is the MatrixSplit(m) constructor: parameters are the matrix
// dimensions read from the argument at matIdx.
func MatrixSplit(matIdx int) core.TypeExpr {
	return core.Concrete("MatrixSplit", MatrixSplitter{}, func(args []any) (core.SplitType, error) {
		m, ok := args[matIdx].(*vmath.Matrix)
		if !ok || m == nil {
			return core.SplitType{}, fmt.Errorf("vmathsa: MatrixSplit ctor: arg %d is %T, want *vmath.Matrix", matIdx, args[matIdx])
		}
		return core.NewSplitType("MatrixSplit", int64(m.Rows), int64(m.Cols)), nil
	})
}

// AddReduceSplitter merges partial float64 results by addition; the
// reduction split type for Dot/Sum-style functions (§3.3 Ex. 5).
type AddReduceSplitter struct{}

// Info reports a single scalar.
func (AddReduceSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: 1, ElemBytes: 8}, nil
}

// Split is never valid for reduction results.
func (AddReduceSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("vmathsa: AddReduce values cannot be split")
}

// Merge sums partial results.
func (AddReduceSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	s := 0.0
	for _, p := range pieces {
		s += p.(float64)
	}
	return s, nil
}

// AddReduce is the scalar-sum reduction split type.
func AddReduce() core.TypeExpr {
	return core.Concrete("AddReduce", AddReduceSplitter{}, core.FixedCtor(core.NewSplitType("AddReduce")))
}

// MaxReduceSplitter merges partial float64 results by max.
type MaxReduceSplitter struct{}

// Info reports a single scalar.
func (MaxReduceSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: 1, ElemBytes: 8}, nil
}

// Split is never valid for reduction results.
func (MaxReduceSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("vmathsa: MaxReduce values cannot be split")
}

// Merge keeps the maximum partial result.
func (MaxReduceSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	best := pieces[0].(float64)
	for _, p := range pieces[1:] {
		if x := p.(float64); x > best {
			best = x
		}
	}
	return best, nil
}

// MaxReduce is the scalar-max reduction split type.
func MaxReduce() core.TypeExpr {
	return core.Concrete("MaxReduce", MaxReduceSplitter{}, core.FixedCtor(core.NewSplitType("MaxReduce")))
}

// VecAddReduceSplitter merges partial []float64 results by elementwise
// addition; used for column-sum reductions over row-split matrices.
type VecAddReduceSplitter struct{}

// Info reports the vector as a single unit.
func (VecAddReduceSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: 1, ElemBytes: int64(len(v.([]float64))) * 8}, nil
}

// Split is never valid for reduction results.
func (VecAddReduceSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("vmathsa: VecAddReduce values cannot be split")
}

// Merge adds the partial vectors elementwise.
func (VecAddReduceSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	if len(pieces) == 0 {
		return []float64(nil), nil
	}
	out := append([]float64(nil), pieces[0].([]float64)...)
	for _, p := range pieces[1:] {
		v := p.([]float64)
		if len(v) != len(out) {
			return nil, fmt.Errorf("vmathsa: VecAddReduce length mismatch %d vs %d", len(v), len(out))
		}
		for i := range v {
			out[i] += v[i]
		}
	}
	return out, nil
}

// VecAddReduce is the vector-sum reduction split type.
func VecAddReduce() core.TypeExpr {
	return core.Concrete("VecAddReduce", VecAddReduceSplitter{}, core.FixedCtor(core.NewSplitType("VecAddReduce")))
}

func init() {
	// Default split types per data type (§5.1 fallback for uninferrable
	// generics).
	core.RegisterDefaultSplit([]float64(nil), ArraySplitter{}, func(v any) (core.SplitType, error) {
		return core.NewSplitType("ArraySplit", int64(len(v.([]float64)))), nil
	})
	core.RegisterDefaultSplit((*vmath.Matrix)(nil), MatrixSplitter{}, func(v any) (core.SplitType, error) {
		m := v.(*vmath.Matrix)
		return core.NewSplitType("MatrixSplit", int64(m.Rows), int64(m.Cols)), nil
	})

	// Snapshot support for whole-call fallback: matrices are mutated in
	// place through row-band views, so the runtime must be able to restore
	// their backing storage before re-executing a faulted stage whole.
	// []float64 is covered by the runtime's built-in slice snapshot.
	core.RegisterSnapshot((*vmath.Matrix)(nil), func(v any) (func() error, error) {
		m := v.(*vmath.Matrix)
		saved := append([]float64(nil), m.Data...)
		return func() error {
			copy(m.Data, saved)
			return nil
		}, nil
	})
}
