package vmathsa_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"mozart/internal/annotations/vmathsa"
	"mozart/internal/core"
	"mozart/internal/vmath"
)

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*3 + 0.5
	}
	return v
}

func almost(a, b []float64, t *testing.T, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: len %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(b[i])) {
			t.Fatalf("%s: idx %d: %v vs %v", what, i, a[i], b[i])
		}
	}
}

func sess() *core.Session {
	return core.NewSession(core.Options{Workers: 4, BatchElems: 128})
}

// TestVectorPipelineMatchesLibrary runs a Listing-1 style pipeline through
// Mozart and compares against direct vmath calls.
func TestVectorPipelineMatchesLibrary(t *testing.T) {
	const n = 4096
	d1, tmp, vol := randVec(n, 1), randVec(n, 2), randVec(n, 3)
	ref := append([]float64(nil), d1...)
	vmath.Log1p(n, ref, ref)
	vmath.Add(n, ref, tmp, ref)
	vmath.Div(n, ref, vol, ref)

	s := sess()
	vmathsa.Log1p(s, n, d1, d1)
	vmathsa.Add(s, n, d1, tmp, d1)
	vmathsa.Div(s, n, d1, vol, d1)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	almost(d1, ref, t, "pipeline")
	if s.Stats().Stages != 1 {
		t.Errorf("want 1 stage, got %d", s.Stats().Stages)
	}
}

// TestAllVectorWrappers drives every wrapped vector function once and
// compares against the direct library call.
func TestAllVectorWrappers(t *testing.T) {
	const n = 777
	type tc struct {
		name string
		moz  func(s *core.Session, a, b, c, out []float64)
		ref  func(a, b, c, out []float64)
	}
	cases := []tc{
		{"Add", func(s *core.Session, a, b, c, out []float64) { vmathsa.Add(s, n, a, b, out) },
			func(a, b, c, out []float64) { vmath.Add(n, a, b, out) }},
		{"Sub", func(s *core.Session, a, b, c, out []float64) { vmathsa.Sub(s, n, a, b, out) },
			func(a, b, c, out []float64) { vmath.Sub(n, a, b, out) }},
		{"Mul", func(s *core.Session, a, b, c, out []float64) { vmathsa.Mul(s, n, a, b, out) },
			func(a, b, c, out []float64) { vmath.Mul(n, a, b, out) }},
		{"Div", func(s *core.Session, a, b, c, out []float64) { vmathsa.Div(s, n, a, b, out) },
			func(a, b, c, out []float64) { vmath.Div(n, a, b, out) }},
		{"MaxV", func(s *core.Session, a, b, c, out []float64) { vmathsa.MaxV(s, n, a, b, out) },
			func(a, b, c, out []float64) { vmath.MaxV(n, a, b, out) }},
		{"MinV", func(s *core.Session, a, b, c, out []float64) { vmathsa.MinV(s, n, a, b, out) },
			func(a, b, c, out []float64) { vmath.MinV(n, a, b, out) }},
		{"Pow", func(s *core.Session, a, b, c, out []float64) { vmathsa.Pow(s, n, a, b, out) },
			func(a, b, c, out []float64) { vmath.Pow(n, a, b, out) }},
		{"Atan2", func(s *core.Session, a, b, c, out []float64) { vmathsa.Atan2(s, n, a, b, out) },
			func(a, b, c, out []float64) { vmath.Atan2(n, a, b, out) }},
		{"Hypot", func(s *core.Session, a, b, c, out []float64) { vmathsa.Hypot(s, n, a, b, out) },
			func(a, b, c, out []float64) { vmath.Hypot(n, a, b, out) }},
		{"Sqrt", func(s *core.Session, a, b, c, out []float64) { vmathsa.Sqrt(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Sqrt(n, a, out) }},
		{"InvSqrt", func(s *core.Session, a, b, c, out []float64) { vmathsa.InvSqrt(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.InvSqrt(n, a, out) }},
		{"Inv", func(s *core.Session, a, b, c, out []float64) { vmathsa.Inv(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Inv(n, a, out) }},
		{"Sqr", func(s *core.Session, a, b, c, out []float64) { vmathsa.Sqr(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Sqr(n, a, out) }},
		{"Exp", func(s *core.Session, a, b, c, out []float64) { vmathsa.Exp(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Exp(n, a, out) }},
		{"Ln", func(s *core.Session, a, b, c, out []float64) { vmathsa.Ln(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Ln(n, a, out) }},
		{"Log1p", func(s *core.Session, a, b, c, out []float64) { vmathsa.Log1p(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Log1p(n, a, out) }},
		{"Log2", func(s *core.Session, a, b, c, out []float64) { vmathsa.Log2(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Log2(n, a, out) }},
		{"Erf", func(s *core.Session, a, b, c, out []float64) { vmathsa.Erf(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Erf(n, a, out) }},
		{"Erfc", func(s *core.Session, a, b, c, out []float64) { vmathsa.Erfc(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Erfc(n, a, out) }},
		{"CdfNorm", func(s *core.Session, a, b, c, out []float64) { vmathsa.CdfNorm(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.CdfNorm(n, a, out) }},
		{"Abs", func(s *core.Session, a, b, c, out []float64) { vmathsa.Abs(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Abs(n, a, out) }},
		{"Sin", func(s *core.Session, a, b, c, out []float64) { vmathsa.Sin(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Sin(n, a, out) }},
		{"Cos", func(s *core.Session, a, b, c, out []float64) { vmathsa.Cos(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Cos(n, a, out) }},
		{"Floor", func(s *core.Session, a, b, c, out []float64) { vmathsa.Floor(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Floor(n, a, out) }},
		{"Neg", func(s *core.Session, a, b, c, out []float64) { vmathsa.Neg(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.Neg(n, a, out) }},
		{"CopyV", func(s *core.Session, a, b, c, out []float64) { vmathsa.CopyV(s, n, a, out) },
			func(a, b, c, out []float64) { vmath.CopyV(n, a, out) }},
		{"AddC", func(s *core.Session, a, b, c, out []float64) { vmathsa.AddC(s, n, a, 1.5, out) },
			func(a, b, c, out []float64) { vmath.AddC(n, a, 1.5, out) }},
		{"SubC", func(s *core.Session, a, b, c, out []float64) { vmathsa.SubC(s, n, a, 1.5, out) },
			func(a, b, c, out []float64) { vmath.SubC(n, a, 1.5, out) }},
		{"SubCRev", func(s *core.Session, a, b, c, out []float64) { vmathsa.SubCRev(s, n, a, 1.5, out) },
			func(a, b, c, out []float64) { vmath.SubCRev(n, a, 1.5, out) }},
		{"MulC", func(s *core.Session, a, b, c, out []float64) { vmathsa.MulC(s, n, a, 1.5, out) },
			func(a, b, c, out []float64) { vmath.MulC(n, a, 1.5, out) }},
		{"DivC", func(s *core.Session, a, b, c, out []float64) { vmathsa.DivC(s, n, a, 1.5, out) },
			func(a, b, c, out []float64) { vmath.DivC(n, a, 1.5, out) }},
		{"DivCRev", func(s *core.Session, a, b, c, out []float64) { vmathsa.DivCRev(s, n, a, 1.5, out) },
			func(a, b, c, out []float64) { vmath.DivCRev(n, a, 1.5, out) }},
		{"Select", func(s *core.Session, a, b, c, out []float64) { vmathsa.Select(s, n, a, b, c, out) },
			func(a, b, c, out []float64) { vmath.Select(n, a, b, c, out) }},
		{"Axpy", func(s *core.Session, a, b, c, out []float64) { vmathsa.Axpy(s, n, 2.0, a, out) },
			func(a, b, c, out []float64) { vmath.Axpy(n, 2.0, a, out) }},
		{"Scal", func(s *core.Session, a, b, c, out []float64) { vmathsa.Scal(s, n, 0.5, out) },
			func(a, b, c, out []float64) { vmath.Scal(n, 0.5, out) }},
	}
	for i, c := range cases {
		seed := int64(100 + i)
		a, b, m := randVec(n, seed), randVec(n, seed+1), randVec(n, seed+2)
		for j := range m {
			if j%3 == 0 {
				m[j] = 0
			}
		}
		out := randVec(n, seed+3)
		refOut := append([]float64(nil), out...)
		refA := append([]float64(nil), a...)

		s := sess()
		c.moz(s, a, b, m, out)
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		c.ref(refA, b, m, refOut)
		almost(out, refOut, t, c.name+" out")
		almost(a, refA, t, c.name+" a")
	}
}

// TestReductions: Dot/Sum/Asum/MaxReduce through Mozart.
func TestReductions(t *testing.T) {
	const n = 5000
	a, b := randVec(n, 40), randVec(n, 41)
	s := sess()
	dot := vmathsa.Dot(s, n, a, b)
	sum := vmathsa.Sum(s, n, a)
	asum := vmathsa.Asum(s, n, a)
	mx := vmathsa.VecMax(s, n, a)

	got, err := dot.Float64()
	if err != nil {
		t.Fatal(err)
	}
	if w := vmath.Dot(n, a, b); math.Abs(got-w) > 1e-7*(1+math.Abs(w)) {
		t.Errorf("Dot = %v want %v", got, w)
	}
	if got, _ := sum.Float64(); math.Abs(got-vmath.Sum(n, a)) > 1e-7*vmath.Sum(n, a) {
		t.Errorf("Sum mismatch")
	}
	if got, _ := asum.Float64(); math.Abs(got-vmath.Asum(n, a)) > 1e-7*vmath.Asum(n, a) {
		t.Errorf("Asum mismatch")
	}
	if got, _ := mx.Float64(); got != vmath.MaxReduce(n, a) {
		t.Errorf("MaxReduce mismatch")
	}
}

// TestMatrixPipeline: row-split matrix ops pipeline; ShiftRows breaks the
// stage; results match the library.
func TestMatrixPipeline(t *testing.T) {
	rows, cols := 96, 40
	mk := func(seed int64) *vmath.Matrix {
		m := vmath.NewMatrix(rows, cols)
		copy(m.Data, randVec(rows*cols, seed))
		return m
	}
	a, b := mk(50), mk(51)
	out := vmath.NewMatrix(rows, cols)
	shifted := vmath.NewMatrix(rows, cols)
	final := vmath.NewMatrix(rows, cols)

	refOut := vmath.NewMatrix(rows, cols)
	refShifted := vmath.NewMatrix(rows, cols)
	refFinal := vmath.NewMatrix(rows, cols)
	vmath.MatAdd(a, b, refOut)
	vmath.MatSqrt(refOut, refOut)
	vmath.ShiftRows(refOut, 1, refShifted)
	vmath.MatMulElem(refShifted, b, refFinal)

	s := core.NewSession(core.Options{Workers: 3, BatchElems: 8})
	vmathsa.MatAdd(s, a, b, out)
	vmathsa.MatSqrt(s, out, out)
	vmathsa.ShiftRows(s, out, 1, shifted)
	vmathsa.MatMulElem(s, shifted, b, final)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	almost(final.Data, refFinal.Data, t, "matrix pipeline")
	// Stage structure: [MatAdd, MatSqrt] | [ShiftRows whole] | [MatMulElem].
	if got := s.Stats().Stages; got != 3 {
		t.Errorf("want 3 stages, got %d", got)
	}
}

// TestColSumsReduction: partial column sums merge by vector addition.
func TestColSumsReduction(t *testing.T) {
	rows, cols := 200, 17
	m := vmath.NewMatrix(rows, cols)
	copy(m.Data, randVec(rows*cols, 60))
	want := vmath.ColSums(m)

	s := core.NewSession(core.Options{Workers: 4, BatchElems: 16})
	f := vmathsa.ColSums(s, m)
	v, err := f.Get()
	if err != nil {
		t.Fatal(err)
	}
	almost(v.([]float64), want, t, "ColSums")
}

// TestRowSumsAndGemv: mixed matrix/vector split types in one stage.
func TestRowSumsAndGemv(t *testing.T) {
	rows, cols := 120, 30
	m := vmath.NewMatrix(rows, cols)
	copy(m.Data, randVec(rows*cols, 61))
	x := randVec(cols, 62)
	y := randVec(rows, 63)
	rs := make([]float64, rows)

	refY := append([]float64(nil), y...)
	refRS := make([]float64, rows)
	vmath.RowSums(m, refRS)
	vmath.Gemv(2.0, m, x, 0.5, refY)

	s := core.NewSession(core.Options{Workers: 4, BatchElems: 11})
	vmathsa.RowSums(s, m, rs)
	vmathsa.Gemv(s, 2.0, m, x, 0.5, y)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	almost(rs, refRS, t, "RowSums")
	almost(y, refY, t, "Gemv")
	if got := s.Stats().Stages; got != 1 {
		t.Errorf("RowSums+Gemv should share a stage, got %d", got)
	}
}

// TestMatVecBroadcastOps: MulRowVec / AddRowVec / MulColVec / MatFill /
// MatScale and friends against the library.
func TestMatVecBroadcastOps(t *testing.T) {
	rows, cols := 64, 12
	m := vmath.NewMatrix(rows, cols)
	copy(m.Data, randVec(rows*cols, 70))
	rv := randVec(cols, 71)
	cv := randVec(rows, 72)
	out := vmath.NewMatrix(rows, cols)
	ref := vmath.NewMatrix(rows, cols)

	s := core.NewSession(core.Options{Workers: 2, BatchElems: 8})
	vmathsa.MulRowVec(s, m, rv, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	vmath.MulRowVec(m, rv, ref)
	almost(out.Data, ref.Data, t, "MulRowVec")

	vmathsa.AddRowVec(s, m, rv, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	vmath.AddRowVec(m, rv, ref)
	almost(out.Data, ref.Data, t, "AddRowVec")

	vmathsa.MulColVec(s, m, cv, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	vmath.MulColVec(m, cv, ref)
	almost(out.Data, ref.Data, t, "MulColVec")

	vmathsa.MatFill(s, out, 3)
	vmathsa.MatScale(s, out, 2, out)
	vmathsa.MatAddC(s, out, 1, out)
	vmathsa.MatPowC(s, out, 2, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, x := range out.Data {
		if x != 49 {
			t.Fatalf("scalar matrix chain: got %v want 49", x)
		}
	}
}

// TestOuterDiffWhole: OuterDiff runs whole and feeds split consumers.
func TestOuterDiffWhole(t *testing.T) {
	n := 48
	x := randVec(n, 80)
	dx := vmath.NewMatrix(n, n)
	out := vmath.NewMatrix(n, n)
	refDx := vmath.NewMatrix(n, n)
	refOut := vmath.NewMatrix(n, n)
	vmath.OuterDiff(x, refDx)
	vmath.MatMulElem(refDx, refDx, refOut)

	s := core.NewSession(core.Options{Workers: 2, BatchElems: 4})
	vmathsa.OuterDiff(s, x, dx)
	vmathsa.MatMulElem(s, dx, dx, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	almost(out.Data, refOut.Data, t, "OuterDiff+MatMulElem")
	if got := s.Stats().Stages; got != 2 {
		t.Errorf("want 2 stages (whole outerDiff, split mul), got %d", got)
	}
}

// TestShiftColsPipelines: ShiftCols is row-local and shares a stage with
// elementwise ops.
func TestShiftColsPipelines(t *testing.T) {
	rows, cols := 80, 20
	m := vmath.NewMatrix(rows, cols)
	copy(m.Data, randVec(rows*cols, 81))
	sh := vmath.NewMatrix(rows, cols)
	out := vmath.NewMatrix(rows, cols)
	refSh := vmath.NewMatrix(rows, cols)
	refOut := vmath.NewMatrix(rows, cols)
	vmath.ShiftCols(m, 3, refSh)
	vmath.MatSub(refSh, m, refOut)

	s := core.NewSession(core.Options{Workers: 4, BatchElems: 16})
	vmathsa.ShiftCols(s, m, 3, sh)
	vmathsa.MatSub(s, sh, m, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	almost(out.Data, refOut.Data, t, "ShiftCols+MatSub")
	if got := s.Stats().Stages; got != 1 {
		t.Errorf("ShiftCols should pipeline, got %d stages", got)
	}
}

// TestRemainingMatrixWrappers covers MatDivElem/MatExp/MatCopy and the
// splitting API's error paths.
func TestRemainingMatrixWrappers(t *testing.T) {
	rows, cols := 48, 10
	a := vmath.NewMatrix(rows, cols)
	b := vmath.NewMatrix(rows, cols)
	copy(a.Data, randVec(rows*cols, 90))
	copy(b.Data, randVec(rows*cols, 91))
	out := vmath.NewMatrix(rows, cols)
	ref := vmath.NewMatrix(rows, cols)

	s := core.NewSession(core.Options{Workers: 3, BatchElems: 7})
	vmathsa.MatDivElem(s, a, b, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	vmath.MatDivElem(a, b, ref)
	almost(out.Data, ref.Data, t, "MatDivElem")

	vmathsa.MatExp(s, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	vmath.MatExp(a, ref)
	almost(out.Data, ref.Data, t, "MatExp")

	vmathsa.MatCopy(s, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	almost(out.Data, a.Data, t, "MatCopy")
}

// TestVmathSplitterErrorPaths: the splitting API rejects foreign types and
// reduction partials reject Split.
func TestVmathSplitterErrorPaths(t *testing.T) {
	if _, err := (vmathsa.ArraySplitter{}).Info("x", core.NewSplitType("ArraySplit")); err == nil {
		t.Error("ArraySplit Info type check")
	}
	if _, err := (vmathsa.ArraySplitter{}).Split(make([]float64, 4), core.NewSplitType("ArraySplit"), 0, 9); err == nil {
		t.Error("ArraySplit out-of-range split")
	}
	if _, err := (vmathsa.SizeSplitter{}).Info("x", core.NewSplitType("SizeSplit")); err == nil {
		t.Error("SizeSplit Info type check")
	}
	if _, err := (vmathsa.MatrixSplitter{}).Info("x", core.NewSplitType("MatrixSplit")); err == nil {
		t.Error("MatrixSplit Info type check")
	}
	for _, sp := range []core.Splitter{vmathsa.AddReduceSplitter{}, vmathsa.MaxReduceSplitter{}, vmathsa.VecAddReduceSplitter{}} {
		if _, err := sp.Split(nil, core.NewSplitType("r"), 0, 1); err == nil {
			t.Errorf("%T should not split", sp)
		}
	}
	if _, err := (vmathsa.VecAddReduceSplitter{}).Merge([]any{[]float64{1}, []float64{1, 2}}, core.NewSplitType("v")); err == nil {
		t.Error("VecAddReduce length mismatch")
	}
	// Size split merges piece lengths.
	m, err := (vmathsa.SizeSplitter{}).Merge([]any{3, 4}, core.NewSplitType("SizeSplit"))
	if err != nil || m.(int) != 7 {
		t.Error("SizeSplit merge")
	}
	// Empty matrix merge yields an empty matrix.
	mm, err := (vmathsa.MatrixSplitter{}).Merge(nil, core.NewSplitType("MatrixSplit"))
	if err != nil || mm.(*vmath.Matrix).Rows != 0 {
		t.Error("empty matrix merge")
	}
}

// TestCheckVmathAnnotations: the §7.1 checker validates a generated-style
// vector annotation end to end.
func TestCheckVmathAnnotations(t *testing.T) {
	gen := func(seed int64) []any {
		rng := rand.New(rand.NewSource(seed))
		n := 501
		a := make([]float64, n)
		out := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64() + 0.1
		}
		return []any{n, a, out}
	}
	eq := func(got, want any) bool {
		switch g := got.(type) {
		case []float64:
			w := want.([]float64)
			for i := range g {
				if g[i] != w[i] {
					return false
				}
			}
			return true
		case int:
			return got == want
		}
		return false
	}
	sa := &core.Annotation{FuncName: "vdSqrt", Params: []core.Param{
		{Name: "size", Type: vmathsa.SizeSplit(0)},
		{Name: "a", Type: vmathsa.ArraySplit(0)},
		{Name: "out", Mut: true, Type: vmathsa.ArraySplit(0)},
	}}
	fn := func(args []any) (any, error) {
		vmath.Sqrt(args[0].(int), args[1].([]float64), args[2].([]float64))
		return nil, nil
	}
	if err := core.CheckAnnotation(core.CheckSpec{Fn: fn, Annotation: sa, Gen: gen, Eq: eq, Config: core.CheckConfig{Seed: 11}}); err != nil {
		t.Fatal(err)
	}
}
