package vmathsa_test

import (
	"context"
	"errors"
	"testing"

	"mozart/internal/annotations/vmathsa"
	"mozart/internal/core"
	"mozart/internal/faultinject"
	"mozart/internal/vmath"
)

// faultyLog1p builds an annotated vdLog1p whose library function and array
// splitter both run through the injector under the given site name,
// mirroring what the real wrappers register.
func faultyLog1p(inj *faultinject.Injector, site string) (core.Func, *core.Annotation) {
	fn := inj.WrapFunc(site, func(args []any) (any, error) {
		vmath.Log1p(args[0].(int), args[1].([]float64), args[2].([]float64))
		return nil, nil
	})
	arr := core.Concrete("ArraySplit", inj.WrapSplitter(site, vmathsa.ArraySplitter{}), func(args []any) (core.SplitType, error) {
		return core.NewSplitType("ArraySplit", int64(args[0].(int))), nil
	})
	sa := &core.Annotation{FuncName: site, Params: []core.Param{
		{Name: "size", Type: vmathsa.SizeSplit(0)},
		{Name: "a", Type: arr},
		{Name: "out", Mut: true, Type: arr},
	}}
	return fn, sa
}

// TestInjectedPanicFallback: a panic injected into a randomly chosen batch
// of an annotated vmath call neither crashes the process nor changes the
// result — with FallbackWholeCall the output is identical to calling the
// unannotated library directly.
func TestInjectedPanicFallback(t *testing.T) {
	const n = 2048
	inj := faultinject.New(42)
	fn, sa := faultyLog1p(inj, "vdLog1p")
	nth := inj.PanicOnRandomCall("vdLog1p", 10)
	t.Logf("injecting panic on call %d", nth)

	a := randVec(n, 7)
	ref := make([]float64, n)
	vmath.Log1p(n, a, ref)

	out := make([]float64, n)
	s := core.NewSession(core.Options{Workers: 4, BatchElems: 128, FallbackPolicy: core.FallbackWholeCall})
	s.Call(fn, sa, n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	almost(out, ref, t, "log1p under injected panic")
	st := s.Stats()
	if st.RecoveredPanics < 1 {
		t.Errorf("RecoveredPanics = %d, want >= 1", st.RecoveredPanics)
	}
	if st.FallbackStages != 1 {
		t.Errorf("FallbackStages = %d, want 1", st.FallbackStages)
	}
	if inj.Count("vdLog1p", faultinject.AspectCall) == 0 {
		t.Error("injector saw no calls")
	}
}

// TestInjectedSplitErrorQuarantine: a splitter error quarantines the
// annotation under FallbackQuarantine; the second evaluation plans it whole
// and never consults the faulty splitter again.
func TestInjectedSplitErrorQuarantine(t *testing.T) {
	const n = 1024
	inj := faultinject.New(1)
	fn, sa := faultyLog1p(inj, "vdLog1p")
	inj.ErrorOnNthSplit("vdLog1p", 1)

	a := randVec(n, 8)
	ref := make([]float64, n)
	vmath.Log1p(n, a, ref)

	out := make([]float64, n)
	s := core.NewSession(core.Options{Workers: 4, BatchElems: 128, FallbackPolicy: core.FallbackQuarantine})
	s.Call(fn, sa, n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatalf("first Evaluate: %v", err)
	}
	almost(out, ref, t, "log1p after split-error fallback")
	if q := s.Quarantined(); len(q) != 1 || q[0] != "vdLog1p" {
		t.Fatalf("Quarantined() = %v, want [vdLog1p]", q)
	}

	splitsBefore := inj.Count("vdLog1p", faultinject.AspectSplit)
	out2 := make([]float64, n)
	s.Call(fn, sa, n, a, out2)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatalf("second Evaluate: %v", err)
	}
	almost(out2, ref, t, "log1p while quarantined")
	if got := inj.Count("vdLog1p", faultinject.AspectSplit); got != splitsBefore {
		t.Errorf("quarantined annotation's splitter was consulted again (%d -> %d)", splitsBefore, got)
	}
	if got := s.Stats().FallbackStages; got != 1 {
		t.Errorf("FallbackStages = %d, want 1 (second eval runs whole without faulting)", got)
	}
}

// TestInjectedCallErrorNoFallback: an error returned by the library function
// itself is not an annotation fault and must propagate even with fallback
// enabled.
func TestInjectedCallErrorNoFallback(t *testing.T) {
	const n = 1024
	inj := faultinject.New(2)
	fn, sa := faultyLog1p(inj, "vdLog1p")
	inj.ErrorOnNthCall("vdLog1p", 2)

	a, out := randVec(n, 9), make([]float64, n)
	s := core.NewSession(core.Options{Workers: 4, BatchElems: 128, FallbackPolicy: core.FallbackWholeCall})
	s.Call(fn, sa, n, a, out)
	err := s.EvaluateContext(context.Background())
	if err == nil {
		t.Fatal("want injected library error to propagate")
	}
	var serr *core.StageError
	if !errors.As(err, &serr) {
		t.Fatalf("want *core.StageError, got %T: %v", err, err)
	}
	if serr.Origin != core.OriginCall || serr.AnnotationFault() {
		t.Errorf("Origin = %v, AnnotationFault = %v; want call-origin non-annotation fault", serr.Origin, serr.AnnotationFault())
	}
	if got := s.Stats().FallbackStages; got != 0 {
		t.Errorf("FallbackStages = %d, want 0", got)
	}
}
