package vmathsa

import (
	"mozart/internal/core"
	"mozart/internal/vmath"
)

// The wrappers below are what the paper's annotate tool generates: a
// namespaced function per library function that registers the call with the
// session instead of executing it. Splittable arguments are typed any so
// that Futures can flow through pipelines.

// makeVecUnary builds the Func and SA for f(size, a, mut out):
// @splittable(size: SizeSplit(size), a: ArraySplit(size),
// mut out: ArraySplit(size)).
func makeVecUnary(name string, f func(int, []float64, []float64)) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		f(args[0].(int), args[1].([]float64), args[2].([]float64))
		return nil, nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "size", Type: SizeSplit(0)},
		{Name: "a", Type: ArraySplit(0)},
		{Name: "out", Mut: true, Type: ArraySplit(0)},
	}}
	return fn, sa
}

// makeVecBinary builds the Func and SA for f(size, a, b, mut out).
func makeVecBinary(name string, f func(int, []float64, []float64, []float64)) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		f(args[0].(int), args[1].([]float64), args[2].([]float64), args[3].([]float64))
		return nil, nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "size", Type: SizeSplit(0)},
		{Name: "a", Type: ArraySplit(0)},
		{Name: "b", Type: ArraySplit(0)},
		{Name: "out", Mut: true, Type: ArraySplit(0)},
	}}
	return fn, sa
}

// makeVecScalar builds the Func and SA for f(size, a, c, mut out) where c
// is an unsplit scalar ("_").
func makeVecScalar(name string, f func(int, []float64, float64, []float64)) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		f(args[0].(int), args[1].([]float64), args[2].(float64), args[3].([]float64))
		return nil, nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "size", Type: SizeSplit(0)},
		{Name: "a", Type: ArraySplit(0)},
		{Name: "c", Type: core.Missing()},
		{Name: "out", Mut: true, Type: ArraySplit(0)},
	}}
	return fn, sa
}

// makeVecReduce builds the Func and SA for f(size, a) -> scalar with the
// given reduction split type.
func makeVecReduce(name string, ret core.TypeExpr, f func(int, []float64) float64) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		return f(args[0].(int), args[1].([]float64)), nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "size", Type: SizeSplit(0)},
		{Name: "a", Type: ArraySplit(0)},
	}, Ret: &ret}
	return fn, sa
}

var (
	addFn, addSA         = makeVecBinary("vdAdd", vmath.Add)
	subFn, subSA         = makeVecBinary("vdSub", vmath.Sub)
	mulFn, mulSA         = makeVecBinary("vdMul", vmath.Mul)
	divFn, divSA         = makeVecBinary("vdDiv", vmath.Div)
	maxvFn, maxvSA       = makeVecBinary("vdFmax", vmath.MaxV)
	minvFn, minvSA       = makeVecBinary("vdFmin", vmath.MinV)
	powFn, powSA         = makeVecBinary("vdPow", vmath.Pow)
	atan2Fn, atan2SA     = makeVecBinary("vdAtan2", vmath.Atan2)
	hypotFn, hypotSA     = makeVecBinary("vdHypot", vmath.Hypot)
	sqrtFn, sqrtSA       = makeVecUnary("vdSqrt", vmath.Sqrt)
	invsqrtFn, invsqrtSA = makeVecUnary("vdInvSqrt", vmath.InvSqrt)
	invFn, invSA         = makeVecUnary("vdInv", vmath.Inv)
	sqrFn, sqrSA         = makeVecUnary("vdSqr", vmath.Sqr)
	expFn, expSA         = makeVecUnary("vdExp", vmath.Exp)
	lnFn, lnSA           = makeVecUnary("vdLn", vmath.Ln)
	log1pFn, log1pSA     = makeVecUnary("vdLog1p", vmath.Log1p)
	log2Fn, log2SA       = makeVecUnary("vdLog2", vmath.Log2)
	erfFn, erfSA         = makeVecUnary("vdErf", vmath.Erf)
	erfcFn, erfcSA       = makeVecUnary("vdErfc", vmath.Erfc)
	cdfnormFn, cdfnormSA = makeVecUnary("vdCdfNorm", vmath.CdfNorm)
	absFn, absSA         = makeVecUnary("vdAbs", vmath.Abs)
	sinFn, sinSA         = makeVecUnary("vdSin", vmath.Sin)
	cosFn, cosSA         = makeVecUnary("vdCos", vmath.Cos)
	floorFn, floorSA     = makeVecUnary("vdFloor", vmath.Floor)
	negFn, negSA         = makeVecUnary("vdNeg", vmath.Neg)
	copyFn, copySA       = makeVecUnary("cblas_dcopy", vmath.CopyV)
	addcFn, addcSA       = makeVecScalar("vdAddC", vmath.AddC)
	subcFn, subcSA       = makeVecScalar("vdSubC", vmath.SubC)
	subcrFn, subcrSA     = makeVecScalar("vdSubCRev", vmath.SubCRev)
	mulcFn, mulcSA       = makeVecScalar("vdMulC", vmath.MulC)
	divcFn, divcSA       = makeVecScalar("vdDivC", vmath.DivC)
	divcrFn, divcrSA     = makeVecScalar("vdDivCRev", vmath.DivCRev)
	sumFn, sumSA         = makeVecReduce("vdSum", AddReduce(), vmath.Sum)
	asumFn, asumSA       = makeVecReduce("cblas_dasum", AddReduce(), vmath.Asum)
	maxFn, maxSA         = makeVecReduce("vdMaxReduce", MaxReduce(), vmath.MaxReduce)
)

// Add registers out = a + b.
func Add(s *core.Session, n int, a, b, out any) { s.Call(addFn, addSA, n, a, b, out) }

// Sub registers out = a - b.
func Sub(s *core.Session, n int, a, b, out any) { s.Call(subFn, subSA, n, a, b, out) }

// Mul registers out = a * b.
func Mul(s *core.Session, n int, a, b, out any) { s.Call(mulFn, mulSA, n, a, b, out) }

// Div registers out = a / b.
func Div(s *core.Session, n int, a, b, out any) { s.Call(divFn, divSA, n, a, b, out) }

// MaxV registers out = max(a, b).
func MaxV(s *core.Session, n int, a, b, out any) { s.Call(maxvFn, maxvSA, n, a, b, out) }

// MinV registers out = min(a, b).
func MinV(s *core.Session, n int, a, b, out any) { s.Call(minvFn, minvSA, n, a, b, out) }

// Pow registers out = a^b.
func Pow(s *core.Session, n int, a, b, out any) { s.Call(powFn, powSA, n, a, b, out) }

// Atan2 registers out = atan2(a, b).
func Atan2(s *core.Session, n int, a, b, out any) { s.Call(atan2Fn, atan2SA, n, a, b, out) }

// Hypot registers out = hypot(a, b).
func Hypot(s *core.Session, n int, a, b, out any) { s.Call(hypotFn, hypotSA, n, a, b, out) }

// Sqrt registers out = sqrt(a).
func Sqrt(s *core.Session, n int, a, out any) { s.Call(sqrtFn, sqrtSA, n, a, out) }

// InvSqrt registers out = 1/sqrt(a).
func InvSqrt(s *core.Session, n int, a, out any) { s.Call(invsqrtFn, invsqrtSA, n, a, out) }

// Inv registers out = 1/a.
func Inv(s *core.Session, n int, a, out any) { s.Call(invFn, invSA, n, a, out) }

// Sqr registers out = a*a.
func Sqr(s *core.Session, n int, a, out any) { s.Call(sqrFn, sqrSA, n, a, out) }

// Exp registers out = e^a.
func Exp(s *core.Session, n int, a, out any) { s.Call(expFn, expSA, n, a, out) }

// Ln registers out = ln(a).
func Ln(s *core.Session, n int, a, out any) { s.Call(lnFn, lnSA, n, a, out) }

// Log1p registers out = ln(1+a).
func Log1p(s *core.Session, n int, a, out any) { s.Call(log1pFn, log1pSA, n, a, out) }

// Log2 registers out = log2(a).
func Log2(s *core.Session, n int, a, out any) { s.Call(log2Fn, log2SA, n, a, out) }

// Erf registers out = erf(a).
func Erf(s *core.Session, n int, a, out any) { s.Call(erfFn, erfSA, n, a, out) }

// Erfc registers out = erfc(a).
func Erfc(s *core.Session, n int, a, out any) { s.Call(erfcFn, erfcSA, n, a, out) }

// CdfNorm registers out = Phi(a).
func CdfNorm(s *core.Session, n int, a, out any) { s.Call(cdfnormFn, cdfnormSA, n, a, out) }

// Abs registers out = |a|.
func Abs(s *core.Session, n int, a, out any) { s.Call(absFn, absSA, n, a, out) }

// Sin registers out = sin(a).
func Sin(s *core.Session, n int, a, out any) { s.Call(sinFn, sinSA, n, a, out) }

// Cos registers out = cos(a).
func Cos(s *core.Session, n int, a, out any) { s.Call(cosFn, cosSA, n, a, out) }

// Floor registers out = floor(a).
func Floor(s *core.Session, n int, a, out any) { s.Call(floorFn, floorSA, n, a, out) }

// Neg registers out = -a.
func Neg(s *core.Session, n int, a, out any) { s.Call(negFn, negSA, n, a, out) }

// CopyV registers out = a.
func CopyV(s *core.Session, n int, a, out any) { s.Call(copyFn, copySA, n, a, out) }

// AddC registers out = a + c.
func AddC(s *core.Session, n int, a any, c float64, out any) { s.Call(addcFn, addcSA, n, a, c, out) }

// SubC registers out = a - c.
func SubC(s *core.Session, n int, a any, c float64, out any) { s.Call(subcFn, subcSA, n, a, c, out) }

// SubCRev registers out = c - a.
func SubCRev(s *core.Session, n int, a any, c float64, out any) {
	s.Call(subcrFn, subcrSA, n, a, c, out)
}

// MulC registers out = a * c.
func MulC(s *core.Session, n int, a any, c float64, out any) { s.Call(mulcFn, mulcSA, n, a, c, out) }

// DivC registers out = a / c.
func DivC(s *core.Session, n int, a any, c float64, out any) { s.Call(divcFn, divcSA, n, a, c, out) }

// DivCRev registers out = c / a.
func DivCRev(s *core.Session, n int, a any, c float64, out any) {
	s.Call(divcrFn, divcrSA, n, a, c, out)
}

// Select registers out[i] = mask[i] != 0 ? ifTrue[i] : ifFalse[i].
func Select(s *core.Session, n int, mask, ifTrue, ifFalse, out any) *core.Future {
	return s.Call(selectFn, selectSA, n, mask, ifTrue, ifFalse, out)
}

var selectFn core.Func = func(args []any) (any, error) {
	vmath.Select(args[0].(int), args[1].([]float64), args[2].([]float64), args[3].([]float64), args[4].([]float64))
	return nil, nil
}

var selectSA = &core.Annotation{FuncName: "vdSelect", Params: []core.Param{
	{Name: "size", Type: SizeSplit(0)},
	{Name: "mask", Type: ArraySplit(0)},
	{Name: "ifTrue", Type: ArraySplit(0)},
	{Name: "ifFalse", Type: ArraySplit(0)},
	{Name: "out", Mut: true, Type: ArraySplit(0)},
}}

// Axpy registers y += alpha * x.
func Axpy(s *core.Session, n int, alpha float64, x, y any) { s.Call(axpyFn, axpySA, n, alpha, x, y) }

var axpyFn core.Func = func(args []any) (any, error) {
	vmath.Axpy(args[0].(int), args[1].(float64), args[2].([]float64), args[3].([]float64))
	return nil, nil
}

var axpySA = &core.Annotation{FuncName: "cblas_daxpy", Params: []core.Param{
	{Name: "size", Type: SizeSplit(0)},
	{Name: "alpha", Type: core.Missing()},
	{Name: "x", Type: ArraySplit(0)},
	{Name: "y", Mut: true, Type: ArraySplit(0)},
}}

// Scal registers x *= alpha.
func Scal(s *core.Session, n int, alpha float64, x any) { s.Call(scalFn, scalSA, n, alpha, x) }

var scalFn core.Func = func(args []any) (any, error) {
	vmath.Scal(args[0].(int), args[1].(float64), args[2].([]float64))
	return nil, nil
}

var scalSA = &core.Annotation{FuncName: "cblas_dscal", Params: []core.Param{
	{Name: "size", Type: SizeSplit(0)},
	{Name: "alpha", Type: core.Missing()},
	{Name: "x", Mut: true, Type: ArraySplit(0)},
}}

// Dot registers the inner product of x and y; partial dots merge by
// addition.
func Dot(s *core.Session, n int, x, y any) *core.Future {
	return s.Call(dotBinFn, dotBinSA, n, x, y)
}

var dotBinFn core.Func = func(args []any) (any, error) {
	return vmath.Dot(args[0].(int), args[1].([]float64), args[2].([]float64)), nil
}

var dotBinSA = &core.Annotation{FuncName: "cblas_ddot", Params: []core.Param{
	{Name: "size", Type: SizeSplit(0)},
	{Name: "x", Type: ArraySplit(0)},
	{Name: "y", Type: ArraySplit(0)},
}, Ret: func() *core.TypeExpr { t := AddReduce(); return &t }()}

// Sum registers the sum reduction of a.
func Sum(s *core.Session, n int, a any) *core.Future { return s.Call(sumFn, sumSA, n, a) }

// Asum registers the absolute-sum reduction of a.
func Asum(s *core.Session, n int, a any) *core.Future { return s.Call(asumFn, asumSA, n, a) }

// VecMax registers the max reduction of a.
func VecMax(s *core.Session, n int, a any) *core.Future { return s.Call(maxFn, maxSA, n, a) }
