package vmathsa_test

import (
	"context"
	"testing"

	"mozart/internal/annotations/vmathsa"
	"mozart/internal/core"
	"mozart/internal/vmath"
)

// TestArraySplitViewZeroAllocs pins the acceptance criterion for the
// zero-copy hot path: once the reuse slots are warm (AllocsPerRun's warm-up
// call), repeatedly re-splitting the same array into the same batch ranges
// through SplitView performs zero heap allocations — the identical-view fast
// path returns the reuse slot unchanged, skipping even the interface re-box.
func TestArraySplitViewZeroAllocs(t *testing.T) {
	const n, batch = 4096, 512
	sp := vmathsa.ArraySplitter{}
	st := core.NewSplitType("ArraySplit", n)
	a := randVec(n, 11)
	views := make([]any, n/batch)
	var err error
	run := func() {
		for i := range views {
			lo, hi := int64(i*batch), int64((i+1)*batch)
			var v any
			v, err = sp.SplitView(a, st, lo, hi, views[i])
			if err != nil {
				return
			}
			views[i] = v
		}
	}
	allocs := testing.AllocsPerRun(100, run)
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("warm SplitView loop allocates %.1f objects/run, want 0", allocs)
	}
	for i, v := range views {
		piece := v.([]float64)
		if &piece[0] != &a[i*batch] {
			t.Fatalf("view %d does not alias the source", i)
		}
	}
}

// TestMatrixSplitViewZeroAllocs: the matrix path retargets the reuse piece's
// header in place, so steady-state row-band splits are also allocation-free.
func TestMatrixSplitViewZeroAllocs(t *testing.T) {
	const rows, cols, band = 256, 16, 32
	sp := vmathsa.MatrixSplitter{}
	st := core.NewSplitType("MatrixSplit", rows, cols)
	m := &vmath.Matrix{Rows: rows, Cols: cols, Data: randVec(rows*cols, 13)}
	views := make([]any, rows/band)
	var err error
	run := func() {
		for i := range views {
			lo, hi := int64(i*band), int64((i+1)*band)
			var v any
			v, err = sp.SplitView(m, st, lo, hi, views[i])
			if err != nil {
				return
			}
			views[i] = v
		}
	}
	allocs := testing.AllocsPerRun(100, run)
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("warm matrix SplitView loop allocates %.1f objects/run, want 0", allocs)
	}
	for i, v := range views {
		piece := v.(*vmath.Matrix)
		if &piece.Data[0] != &m.Data[i*band*cols] {
			t.Fatalf("band %d does not alias the source", i)
		}
	}
}

// TestStitchMergeSharesStorage: merging in-order contiguous views reslices
// the original backing array instead of copying.
func TestStitchMergeSharesStorage(t *testing.T) {
	sp := vmathsa.ArraySplitter{}
	st := core.NewSplitType("ArraySplit", 100)
	a := randVec(100, 17)
	var pieces []any
	for lo := int64(0); lo < 100; lo += 30 {
		hi := lo + 30
		if hi > 100 {
			hi = 100
		}
		p, err := sp.SplitView(a, st, lo, hi, nil)
		if err != nil {
			t.Fatal(err)
		}
		pieces = append(pieces, p)
	}
	merged, err := sp.Merge(pieces, st)
	if err != nil {
		t.Fatal(err)
	}
	out := merged.([]float64)
	if len(out) != len(a) || &out[0] != &a[0] {
		t.Fatal("stitched merge should alias the original storage")
	}
}

// TestMergeFallbackCopies: pieces from unrelated arrays cannot stitch; the
// fallback must copy into fresh storage rather than append into a piece's
// backing array (which the piece may alias and appending would clobber).
func TestMergeFallbackCopies(t *testing.T) {
	sp := vmathsa.ArraySplitter{}
	st := core.NewSplitType("ArraySplit", 8)
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	aCopy := append([]float64(nil), a...)
	bCopy := append([]float64(nil), b...)
	merged, err := sp.Merge([]any{a, b}, st)
	if err != nil {
		t.Fatal(err)
	}
	out := merged.([]float64)
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	almost(out, want, t, "fallback merge")
	if &out[0] == &a[0] {
		t.Fatal("fallback merge must not reuse a piece's backing array")
	}
	almost(a, aCopy, t, "piece a untouched")
	almost(b, bCopy, t, "piece b untouched")
}

// TestViewSplitsCounted: an evaluation over view-capable splitters serves
// its input splits through SplitView and counts them, and a second
// evaluation of the same shape reuses the session's warm view slots.
func TestViewSplitsCounted(t *testing.T) {
	const n = 2048
	a, b := randVec(n, 19), randVec(n, 23)
	s := core.NewSession(core.Options{Workers: 2, BatchElems: 256})
	ref := append([]float64(nil), a...)
	vmath.Add(n, ref, b, ref)
	vmath.Mul(n, ref, b, ref)

	vmathsa.Add(s, n, a, b, a)
	vmathsa.Mul(s, n, a, b, a)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	almost(a, ref, t, "first evaluation")
	first := s.Stats().ViewSplits
	if first == 0 {
		t.Fatal("view-capable inputs should be split via SplitView")
	}

	vmath.Add(n, ref, b, ref)
	vmathsa.Add(s, n, a, b, a)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	almost(a, ref, t, "second evaluation")
	if got := s.Stats().ViewSplits; got <= first {
		t.Errorf("ViewSplits = %d after second evaluation, want > %d", got, first)
	}
}
