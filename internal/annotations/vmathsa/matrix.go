package vmathsa

import (
	"mozart/internal/core"
	"mozart/internal/vmath"
)

// Matrix annotations. Everything that operates row-locally splits by rows
// (MatrixSplit); operations that move data across rows (ShiftRows,
// OuterDiff) are annotated with only "_" arguments and therefore run whole,
// breaking pipelines exactly where the paper's nBody / Shallow Water
// workloads hit un-pipelineable operators (§8.2).

// makeMatBinary builds f(a, b, mut out) with all matrices row split.
func makeMatBinary(name string, f func(a, b, out *vmath.Matrix)) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		f(args[0].(*vmath.Matrix), args[1].(*vmath.Matrix), args[2].(*vmath.Matrix))
		return nil, nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "a", Type: MatrixSplit(0)},
		{Name: "b", Type: MatrixSplit(1)},
		{Name: "out", Mut: true, Type: MatrixSplit(2)},
	}}
	return fn, sa
}

// makeMatUnary builds f(a, mut out).
func makeMatUnary(name string, f func(a, out *vmath.Matrix)) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		f(args[0].(*vmath.Matrix), args[1].(*vmath.Matrix))
		return nil, nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "a", Type: MatrixSplit(0)},
		{Name: "out", Mut: true, Type: MatrixSplit(1)},
	}}
	return fn, sa
}

// makeMatScalar builds f(a, c, mut out) with scalar c unsplit.
func makeMatScalar(name string, f func(a *vmath.Matrix, c float64, out *vmath.Matrix)) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		f(args[0].(*vmath.Matrix), args[1].(float64), args[2].(*vmath.Matrix))
		return nil, nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "a", Type: MatrixSplit(0)},
		{Name: "c", Type: core.Missing()},
		{Name: "out", Mut: true, Type: MatrixSplit(2)},
	}}
	return fn, sa
}

var (
	matAddFn, matAddSA     = makeMatBinary("matAdd", vmath.MatAdd)
	matSubFn, matSubSA     = makeMatBinary("matSub", vmath.MatSub)
	matMulFn, matMulSA     = makeMatBinary("matMulElem", vmath.MatMulElem)
	matDivFn, matDivSA     = makeMatBinary("matDivElem", vmath.MatDivElem)
	matSqrtFn, matSqrtSA   = makeMatUnary("matSqrt", vmath.MatSqrt)
	matExpFn, matExpSA     = makeMatUnary("matExp", vmath.MatExp)
	matCopyFn, matCopySA   = makeMatUnary("matCopy", vmath.MatCopy)
	matScaleFn, matScaleSA = makeMatScalar("matScale", vmath.MatScale)
	matAddCFn, matAddCSA   = makeMatScalar("matAddC", vmath.MatAddC)
	matPowCFn, matPowCSA   = makeMatScalar("matPowC", vmath.MatPowC)
)

// MatAdd registers out = a + b.
func MatAdd(s *core.Session, a, b, out any) { s.Call(matAddFn, matAddSA, a, b, out) }

// MatSub registers out = a - b.
func MatSub(s *core.Session, a, b, out any) { s.Call(matSubFn, matSubSA, a, b, out) }

// MatMulElem registers out = a * b elementwise.
func MatMulElem(s *core.Session, a, b, out any) { s.Call(matMulFn, matMulSA, a, b, out) }

// MatDivElem registers out = a / b elementwise.
func MatDivElem(s *core.Session, a, b, out any) { s.Call(matDivFn, matDivSA, a, b, out) }

// MatSqrt registers out = sqrt(a).
func MatSqrt(s *core.Session, a, out any) { s.Call(matSqrtFn, matSqrtSA, a, out) }

// MatExp registers out = exp(a).
func MatExp(s *core.Session, a, out any) { s.Call(matExpFn, matExpSA, a, out) }

// MatCopy registers out = a.
func MatCopy(s *core.Session, a, out any) { s.Call(matCopyFn, matCopySA, a, out) }

// MatScale registers out = a * c.
func MatScale(s *core.Session, a any, c float64, out any) {
	s.Call(matScaleFn, matScaleSA, a, c, out)
}

// MatAddC registers out = a + c.
func MatAddC(s *core.Session, a any, c float64, out any) { s.Call(matAddCFn, matAddCSA, a, c, out) }

// MatPowC registers out = a^c elementwise.
func MatPowC(s *core.Session, a any, c float64, out any) { s.Call(matPowCFn, matPowCSA, a, c, out) }

// MulRowVec registers out[i][j] = a[i][j] * v[j]; v is broadcast.
func MulRowVec(s *core.Session, a, v, out any) { s.Call(mulRowVecFn, mulRowVecSA, a, v, out) }

var mulRowVecFn core.Func = func(args []any) (any, error) {
	vmath.MulRowVec(args[0].(*vmath.Matrix), args[1].([]float64), args[2].(*vmath.Matrix))
	return nil, nil
}

var mulRowVecSA = &core.Annotation{FuncName: "mulRowVec", Params: []core.Param{
	{Name: "a", Type: MatrixSplit(0)},
	{Name: "v", Type: core.Missing()},
	{Name: "out", Mut: true, Type: MatrixSplit(2)},
}}

// AddRowVec registers out[i][j] = a[i][j] + v[j]; v is broadcast.
func AddRowVec(s *core.Session, a, v, out any) { s.Call(addRowVecFn, addRowVecSA, a, v, out) }

var addRowVecFn core.Func = func(args []any) (any, error) {
	vmath.AddRowVec(args[0].(*vmath.Matrix), args[1].([]float64), args[2].(*vmath.Matrix))
	return nil, nil
}

var addRowVecSA = &core.Annotation{FuncName: "addRowVec", Params: []core.Param{
	{Name: "a", Type: MatrixSplit(0)},
	{Name: "v", Type: core.Missing()},
	{Name: "out", Mut: true, Type: MatrixSplit(2)},
}}

// MulColVec registers out[i][j] = a[i][j] * v[i]; v splits with the rows.
func MulColVec(s *core.Session, a, v, out any) { s.Call(mulColVecFn, mulColVecSA, a, v, out) }

var mulColVecFn core.Func = func(args []any) (any, error) {
	vmath.MulColVec(args[0].(*vmath.Matrix), args[1].([]float64), args[2].(*vmath.Matrix))
	return nil, nil
}

var mulColVecSA = &core.Annotation{FuncName: "mulColVec", Params: []core.Param{
	{Name: "a", Type: MatrixSplit(0)},
	{Name: "v", Type: core.Concrete("ArraySplit", ArraySplitter{}, func(args []any) (core.SplitType, error) {
		return core.NewSplitType("ArraySplit", int64(len(args[1].([]float64)))), nil
	})},
	{Name: "out", Mut: true, Type: MatrixSplit(2)},
}}

// RowSums registers out[i] = sum of row i; out splits with the rows.
func RowSums(s *core.Session, a, out any) { s.Call(rowSumsFn, rowSumsSA, a, out) }

var rowSumsFn core.Func = func(args []any) (any, error) {
	vmath.RowSums(args[0].(*vmath.Matrix), args[1].([]float64))
	return nil, nil
}

var rowSumsSA = &core.Annotation{FuncName: "rowSums", Params: []core.Param{
	{Name: "a", Type: MatrixSplit(0)},
	{Name: "out", Mut: true, Type: core.Concrete("ArraySplit", ArraySplitter{}, func(args []any) (core.SplitType, error) {
		return core.NewSplitType("ArraySplit", int64(len(args[1].([]float64)))), nil
	})},
}}

// ColSums registers the column-sum reduction; partial vectors from each row
// band merge by elementwise addition (§3.3 Ex. 5's sumReduceToVector).
func ColSums(s *core.Session, a any) *core.Future { return s.Call(colSumsFn, colSumsSA, a) }

var colSumsFn core.Func = func(args []any) (any, error) {
	return vmath.ColSums(args[0].(*vmath.Matrix)), nil
}

var colSumsSA = &core.Annotation{FuncName: "colSums", Params: []core.Param{
	{Name: "a", Type: MatrixSplit(0)},
}, Ret: func() *core.TypeExpr { t := VecAddReduce(); return &t }()}

// ShiftCols registers a circular column roll (row-local, so it pipelines).
func ShiftCols(s *core.Session, a any, k int, out any) { s.Call(shiftColsFn, shiftColsSA, a, k, out) }

var shiftColsFn core.Func = func(args []any) (any, error) {
	vmath.ShiftCols(args[0].(*vmath.Matrix), args[1].(int), args[2].(*vmath.Matrix))
	return nil, nil
}

var shiftColsSA = &core.Annotation{FuncName: "shiftCols", Params: []core.Param{
	{Name: "a", Type: MatrixSplit(0)},
	{Name: "k", Type: core.Missing()},
	{Name: "out", Mut: true, Type: MatrixSplit(2)},
}}

// ShiftRows registers a circular row roll. Rows cross split boundaries, so
// the annotation marks everything "_": the call runs whole and breaks the
// pipeline around it.
func ShiftRows(s *core.Session, a any, k int, out any) { s.Call(shiftRowsFn, shiftRowsSA, a, k, out) }

var shiftRowsFn core.Func = func(args []any) (any, error) {
	vmath.ShiftRows(args[0].(*vmath.Matrix), args[1].(int), args[2].(*vmath.Matrix))
	return nil, nil
}

var shiftRowsSA = &core.Annotation{FuncName: "shiftRows", Params: []core.Param{
	{Name: "a", Type: core.Missing()},
	{Name: "k", Type: core.Missing()},
	{Name: "out", Mut: true, Type: core.Missing()},
}}

// OuterDiff registers out[i][j] = x[i] - x[j]. Reads all of x for every
// row, so it runs whole.
func OuterDiff(s *core.Session, x, out any) { s.Call(outerDiffFn, outerDiffSA, x, out) }

var outerDiffFn core.Func = func(args []any) (any, error) {
	vmath.OuterDiff(args[0].([]float64), args[1].(*vmath.Matrix))
	return nil, nil
}

var outerDiffSA = &core.Annotation{FuncName: "outerDiff", Params: []core.Param{
	{Name: "x", Type: core.Missing()},
	{Name: "out", Mut: true, Type: core.Missing()},
}}

// Gemv registers y = alpha*A*x + beta*y; A and y split by rows, x is
// broadcast.
func Gemv(s *core.Session, alpha float64, a, x any, beta float64, y any) {
	s.Call(gemvFn, gemvSA, alpha, a, x, beta, y)
}

var gemvFn core.Func = func(args []any) (any, error) {
	vmath.Gemv(args[0].(float64), args[1].(*vmath.Matrix), args[2].([]float64), args[3].(float64), args[4].([]float64))
	return nil, nil
}

var gemvSA = &core.Annotation{FuncName: "cblas_dgemv", Params: []core.Param{
	{Name: "alpha", Type: core.Missing()},
	{Name: "a", Type: MatrixSplit(1)},
	{Name: "x", Type: core.Missing()},
	{Name: "beta", Type: core.Missing()},
	{Name: "y", Mut: true, Type: core.Concrete("ArraySplit", ArraySplitter{}, func(args []any) (core.SplitType, error) {
		return core.NewSplitType("ArraySplit", int64(len(args[4].([]float64)))), nil
	})},
}}

// MatFill registers out = c everywhere.
func MatFill(s *core.Session, out any, c float64) { s.Call(matFillFn, matFillSA, out, c) }

var matFillFn core.Func = func(args []any) (any, error) {
	vmath.MatFill(args[0].(*vmath.Matrix), args[1].(float64))
	return nil, nil
}

var matFillSA = &core.Annotation{FuncName: "matFill", Params: []core.Param{
	{Name: "out", Mut: true, Type: MatrixSplit(0)},
	{Name: "c", Type: core.Missing()},
}}
