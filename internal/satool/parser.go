package satool

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses annotation DSL source.
func Parse(src string) (*File, error) {
	p := &parser{src: src, line: 1}
	return p.parseFile()
}

type parser struct {
	src  string
	pos  int
	line int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("satool: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

// skipSpace advances over whitespace and # comments.
func (p *parser) skipSpace() {
	for !p.eof() {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for !p.eof() && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func isIdentRune(c byte, first bool) bool {
	r := rune(c)
	if unicode.IsLetter(r) || c == '_' {
		return true
	}
	return !first && unicode.IsDigit(r)
}

// ident reads an identifier (may be empty).
func (p *parser) ident() string {
	start := p.pos
	for !p.eof() && isIdentRune(p.src[p.pos], p.pos == start) {
		p.pos++
	}
	return p.src[start:p.pos]
}

// expect consumes the literal token or fails.
func (p *parser) expect(tok string) error {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return nil
	}
	return p.errf("expected %q", tok)
}

// peek reports whether tok comes next.
func (p *parser) peek(tok string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.src[p.pos:], tok)
}

// accept consumes tok if present.
func (p *parser) accept(tok string) bool {
	if p.peek(tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

// goType reads a Go type: everything up to ',' or ')' at depth zero.
func (p *parser) goType() (string, error) {
	p.skipSpace()
	start := p.pos
	depth := 0
	for !p.eof() {
		c := p.src[p.pos]
		switch c {
		case '(', '[', '{':
			depth++
		case ']', '}':
			depth--
		case ')':
			if depth == 0 {
				goto done
			}
			depth--
		case ',', ';', '\n':
			if depth == 0 {
				goto done
			}
		}
		p.pos++
	}
done:
	t := strings.TrimSpace(p.src[start:p.pos])
	if t == "" {
		return "", p.errf("expected a Go type")
	}
	return t, nil
}

func (p *parser) parseFile() (*File, error) {
	f := &File{ImportName: "lib"}
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		switch {
		case p.peek("package"):
			p.accept("package")
			p.skipSpace()
			f.Package = p.ident()
			if f.Package == "" {
				return nil, p.errf("expected package name")
			}
		case p.peek("import"):
			p.accept("import")
			p.skipSpace()
			name := p.ident()
			p.skipSpace()
			if !p.accept(`"`) {
				return nil, p.errf(`expected quoted import path`)
			}
			end := strings.IndexByte(p.src[p.pos:], '"')
			if end < 0 {
				return nil, p.errf("unterminated import path")
			}
			f.ImportPath = p.src[p.pos : p.pos+end]
			p.pos += end + 1
			if name != "" {
				f.ImportName = name
			}
		case p.peek("splittype"):
			st, err := p.parseSplitType()
			if err != nil {
				return nil, err
			}
			f.SplitTypes = append(f.SplitTypes, st)
		case p.peek("@splittable"):
			fn, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		default:
			return nil, p.errf("unexpected input %q", firstWord(p.src[p.pos:]))
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

func firstWord(s string) string {
	if i := strings.IndexAny(s, " \t\n"); i > 0 {
		return s[:i]
	}
	if len(s) > 20 {
		return s[:20]
	}
	return s
}

// parseSplitType parses: splittype Name(int, int);
func (p *parser) parseSplitType() (SplitTypeDecl, error) {
	line := p.line
	p.accept("splittype")
	p.skipSpace()
	name := p.ident()
	if name == "" {
		return SplitTypeDecl{}, p.errf("expected split type name")
	}
	n := 0
	if p.accept("(") {
		for !p.accept(")") {
			p.skipSpace()
			if p.ident() == "" {
				return SplitTypeDecl{}, p.errf("expected parameter type in splittype %s", name)
			}
			n++
			p.accept(",")
		}
	}
	p.accept(";")
	return SplitTypeDecl{Name: name, Params: n, Line: line}, nil
}

// parseTypeExpr parses _, unknown, S, or Name(arg, ...).
func (p *parser) parseTypeExpr() (TypeExpr, error) {
	p.skipSpace()
	if p.accept("_") {
		return TypeExpr{Kind: KindMissing}, nil
	}
	name := p.ident()
	if name == "" {
		return TypeExpr{}, p.errf("expected a split type expression")
	}
	if name == "unknown" {
		return TypeExpr{Kind: KindUnknown}, nil
	}
	if !p.peek("(") {
		// Single uppercase letters (optionally digits) are generics, like
		// S or T in the paper's examples.
		if len(name) <= 2 && name[0] >= 'A' && name[0] <= 'Z' {
			return TypeExpr{Kind: KindGeneric, Name: name}, nil
		}
		return TypeExpr{Kind: KindConcrete, Name: name}, nil
	}
	p.accept("(")
	t := TypeExpr{Kind: KindConcrete, Name: name}
	for !p.accept(")") {
		p.skipSpace()
		arg := p.ident()
		if arg == "" {
			return TypeExpr{}, p.errf("expected constructor argument in %s(...)", name)
		}
		t.CtorArgs = append(t.CtorArgs, arg)
		p.accept(",")
	}
	return t, nil
}

// parseFunc parses an @splittable annotation followed by a func decl.
func (p *parser) parseFunc() (FuncDecl, error) {
	line := p.line
	p.accept("@splittable")
	if err := p.expect("("); err != nil {
		return FuncDecl{}, err
	}
	type annParam struct {
		name string
		mut  bool
		t    TypeExpr
	}
	var ann []annParam
	for !p.accept(")") {
		p.skipSpace()
		mut := false
		if p.peek("mut ") {
			p.accept("mut")
			p.skipSpace()
			mut = true
		}
		name := p.ident()
		if name == "" {
			return FuncDecl{}, p.errf("expected parameter name in @splittable")
		}
		if err := p.expect(":"); err != nil {
			return FuncDecl{}, err
		}
		t, err := p.parseTypeExpr()
		if err != nil {
			return FuncDecl{}, err
		}
		ann = append(ann, annParam{name, mut, t})
		p.accept(",")
	}
	var ret *TypeExpr
	if p.accept("->") {
		t, err := p.parseTypeExpr()
		if err != nil {
			return FuncDecl{}, err
		}
		ret = &t
	}

	if err := p.expect("func"); err != nil {
		return FuncDecl{}, err
	}
	p.skipSpace()
	fname := p.ident()
	if fname == "" {
		return FuncDecl{}, p.errf("expected function name")
	}
	if err := p.expect("("); err != nil {
		return FuncDecl{}, err
	}
	fn := FuncDecl{Name: fname, Ret: ret, Line: line}
	i := 0
	for !p.accept(")") {
		p.skipSpace()
		pname := p.ident()
		if pname == "" {
			return FuncDecl{}, p.errf("expected parameter name in func %s", fname)
		}
		gt, err := p.goType()
		if err != nil {
			return FuncDecl{}, err
		}
		if i >= len(ann) {
			return FuncDecl{}, p.errf("func %s has more parameters than its annotation", fname)
		}
		a := ann[i]
		if a.name != pname {
			return FuncDecl{}, p.errf("func %s: parameter %d named %q in the declaration but %q in the annotation", fname, i, pname, a.name)
		}
		fn.Params = append(fn.Params, Param{Name: pname, Mut: a.mut, Type: a.t, GoType: gt})
		i++
		p.accept(",")
	}
	if i != len(ann) {
		return FuncDecl{}, p.errf("func %s has %d parameters but the annotation names %d", fname, i, len(ann))
	}
	// Declarations are ';'-terminated; anything between ')' and ';' is the
	// Go return type.
	p.skipSpace()
	if !p.accept(";") {
		gt, err := p.goType()
		if err != nil {
			return FuncDecl{}, err
		}
		fn.RetGo = gt
		if err := p.expect(";"); err != nil {
			return FuncDecl{}, err
		}
	}
	return fn, nil
}
