// Package satool implements the paper's `annotate` command-line tool (§4.1):
// a parser for the split-annotation DSL of Listing 3 and a generator that
// turns annotated function declarations into Go wrapper functions which
// register calls with a Mozart session instead of executing them.
//
// The DSL, one declaration per stanza:
//
//	package wrappers
//	import lib "mozart/internal/vmath"
//
//	splittype ArraySplit(int);
//	splittype SizeSplit(int);
//
//	@splittable(size: SizeSplit(size), a: ArraySplit(size), mut out: ArraySplit(size))
//	func Log1p(size int, a []float64, out []float64);
//
//	@splittable(a: S, b: S) -> S
//	func Add2(a []float64, b []float64) []float64;
//
//	@splittable(m: _) -> unknown
//	func Whole(m []float64) []float64;
//
// The splitting API itself (§3.3) is ordinary Go the annotator writes: the
// generated package expects a `splitImpls map[string]satool.SplitTypeImpl`
// variable binding each split type name to its implementation.
package satool

import "fmt"

// File is a parsed annotation file.
type File struct {
	Package    string
	ImportPath string // the annotated library
	ImportName string // local name, default "lib"
	SplitTypes []SplitTypeDecl
	Funcs      []FuncDecl
}

// SplitTypeDecl declares a split type and its parameter arity.
type SplitTypeDecl struct {
	Name   string
	Params int
	Line   int
}

// TypeExprKind mirrors core.TypeKind in the DSL.
type TypeExprKind int

// DSL type expression kinds.
const (
	KindMissing TypeExprKind = iota
	KindConcrete
	KindGeneric
	KindUnknown
)

// TypeExpr is a split type expression in an annotation.
type TypeExpr struct {
	Kind     TypeExprKind
	Name     string   // concrete split type or generic name
	CtorArgs []string // constructor argument names (concrete only)
}

// Param is one annotated parameter.
type Param struct {
	Name   string
	Mut    bool
	Type   TypeExpr
	GoType string // Go type from the func declaration
}

// FuncDecl is one @splittable function.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    *TypeExpr // nil = void
	RetGo  string    // Go return type ("" = void)
	Line   int
}

// Validate cross-checks annotations against declarations.
func (f *File) Validate() error {
	if f.Package == "" {
		return fmt.Errorf("satool: missing package declaration")
	}
	types := map[string]bool{}
	for _, st := range f.SplitTypes {
		if types[st.Name] {
			return fmt.Errorf("satool: line %d: duplicate splittype %s", st.Line, st.Name)
		}
		types[st.Name] = true
	}
	for _, fn := range f.Funcs {
		names := map[string]int{}
		for i, p := range fn.Params {
			names[p.Name] = i
		}
		check := func(t TypeExpr, where string) error {
			if t.Kind != KindConcrete {
				return nil
			}
			if !types[t.Name] {
				return fmt.Errorf("satool: line %d: %s: %s: unknown split type %s", fn.Line, fn.Name, where, t.Name)
			}
			for _, a := range t.CtorArgs {
				if _, ok := names[a]; !ok {
					return fmt.Errorf("satool: line %d: %s: %s: constructor argument %q is not a parameter", fn.Line, fn.Name, where, a)
				}
			}
			return nil
		}
		for _, p := range fn.Params {
			if err := check(p.Type, "param "+p.Name); err != nil {
				return err
			}
		}
		if fn.Ret != nil {
			if err := check(*fn.Ret, "return"); err != nil {
				return err
			}
			if fn.RetGo == "" {
				return fmt.Errorf("satool: line %d: %s: annotated return but void Go signature", fn.Line, fn.Name)
			}
		}
		if fn.Ret == nil && fn.RetGo != "" {
			return fmt.Errorf("satool: line %d: %s: Go signature returns %s but the SA has no return split type", fn.Line, fn.Name, fn.RetGo)
		}
	}
	return nil
}
