package satool

import (
	"strings"
	"testing"
)

const sampleSA = `
# Split annotations for the vmath vector-math header.
package wrappers
import vm "mozart/internal/vmath"

splittype ArraySplit(int);
splittype SizeSplit(int);
splittype AddReduce();

@splittable(size: SizeSplit(size), a: ArraySplit(size), mut out: ArraySplit(size))
func Log1p(size int, a []float64, out []float64);

@splittable(size: SizeSplit(size), a: ArraySplit(size), b: ArraySplit(size), mut out: ArraySplit(size))
func Add(size int, a []float64, b []float64, out []float64);

@splittable(size: SizeSplit(size), x: ArraySplit(size), y: ArraySplit(size)) -> AddReduce()
func Dot(size int, x []float64, y []float64) float64;

@splittable(a: S, v: _) -> S
func Scale2(a []float64, v float64) []float64;

@splittable(m: _) -> unknown
func Reverse(m []float64) []float64;
`

func TestParseSample(t *testing.T) {
	f, err := Parse(sampleSA)
	if err != nil {
		t.Fatal(err)
	}
	if f.Package != "wrappers" || f.ImportName != "vm" || f.ImportPath != "mozart/internal/vmath" {
		t.Fatalf("header: %+v", f)
	}
	if len(f.SplitTypes) != 3 {
		t.Fatalf("split types: %d", len(f.SplitTypes))
	}
	if f.SplitTypes[0].Name != "ArraySplit" || f.SplitTypes[0].Params != 1 {
		t.Fatalf("ArraySplit decl: %+v", f.SplitTypes[0])
	}
	if f.SplitTypes[2].Params != 0 {
		t.Fatalf("AddReduce arity: %+v", f.SplitTypes[2])
	}
	if len(f.Funcs) != 5 {
		t.Fatalf("funcs: %d", len(f.Funcs))
	}

	log1p := f.Funcs[0]
	if log1p.Name != "Log1p" || len(log1p.Params) != 3 {
		t.Fatalf("Log1p: %+v", log1p)
	}
	if !log1p.Params[2].Mut || log1p.Params[0].Mut {
		t.Fatal("mut flags")
	}
	if log1p.Params[1].Type.Kind != KindConcrete || log1p.Params[1].Type.Name != "ArraySplit" ||
		len(log1p.Params[1].Type.CtorArgs) != 1 || log1p.Params[1].Type.CtorArgs[0] != "size" {
		t.Fatalf("ArraySplit(size) expr: %+v", log1p.Params[1].Type)
	}
	if log1p.Params[1].GoType != "[]float64" || log1p.Params[0].GoType != "int" {
		t.Fatal("Go types")
	}
	if log1p.Ret != nil || log1p.RetGo != "" {
		t.Fatal("Log1p should be void")
	}

	dot := f.Funcs[2]
	if dot.Ret == nil || dot.Ret.Kind != KindConcrete || dot.Ret.Name != "AddReduce" || dot.RetGo != "float64" {
		t.Fatalf("Dot return: %+v %q", dot.Ret, dot.RetGo)
	}

	scale := f.Funcs[3]
	if scale.Params[0].Type.Kind != KindGeneric || scale.Params[0].Type.Name != "S" {
		t.Fatalf("generic: %+v", scale.Params[0].Type)
	}
	if scale.Params[1].Type.Kind != KindMissing {
		t.Fatal("missing type")
	}
	if scale.Ret.Kind != KindGeneric {
		t.Fatal("generic return")
	}

	rev := f.Funcs[4]
	if rev.Ret.Kind != KindUnknown {
		t.Fatal("unknown return")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no package", `splittype X(int);`, "missing package"},
		{"bad token", "package p\nwhatever", "unexpected input"},
		{"unknown split type", "package p\n@splittable(a: Foo(a))\nfunc F(a int);", "unknown split type"},
		{"ctor arg not param", "package p\nsplittype X(int);\n@splittable(a: X(b))\nfunc F(a int);", "not a parameter"},
		{"param name mismatch", "package p\n@splittable(a: _)\nfunc F(b int);", "in the annotation"},
		{"param count mismatch", "package p\n@splittable(a: _)\nfunc F(a int, b int);", "more parameters"},
		{"missing colon", "package p\n@splittable(a _)\nfunc F(a int);", `expected ":"`},
		{"void with ret SA", "package p\n@splittable(a: _) -> unknown\nfunc F(a int);", "void Go signature"},
		{"ret without SA", "package p\n@splittable(a: _)\nfunc F(a int) int;", "no return split type"},
		{"dup splittype", "package p\nsplittype X(int);\nsplittype X(int);", "duplicate splittype"},
		{"unterminated import", "package p\nimport lib \"x", "unterminated"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestGenerate(t *testing.T) {
	f, err := Parse(sampleSA)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package wrappers",
		`vm "mozart/internal/vmath"`,
		"func Log1p(s *core.Session, size any, a any, out any)",
		"func Dot(s *core.Session, size any, x any, y any) *core.Future",
		"func Scale2(s *core.Session, a any, v float64) *core.Future",
		`typeExpr("ArraySplit", []int{0})`,
		"Mut: true",
		`core.Generic("S")`,
		"core.Unknown()",
		"args[0].(int)",
		"vm.Add(args[0].(int), args[1].([]float64), args[2].([]float64), args[3].([]float64))",
		"requiredSplitTypes = []string{\"AddReduce\", \"ArraySplit\", \"SizeSplit\"}",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}
