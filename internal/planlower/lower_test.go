package planlower

import (
	"reflect"
	"testing"

	"mozart/internal/plan"
)

// chainPlan models a datacleaning-shaped stage: one 24-byte split input,
// a chain of out-of-place calls whose results pipeline away, and a final
// reduction. Binding 0 is the source, 1..3 intermediate results, 4 the
// reduced count, 10 a zero-width size input, 20 a broadcast value.
func chainPlan() *plan.Plan {
	ret := func(b int, reduced bool) *plan.Arg {
		return &plan.Arg{Binding: b, Name: "ret", Split: "SeriesSplit"}
	}
	return &plan.Plan{
		Pipelining: true,
		Stages: []plan.Stage{{
			Kind: plan.StageSplit,
			Calls: []plan.Call{
				{Name: "sr.str.slice", Args: []plan.Arg{
					{Binding: 10, Split: "SizeSplit<32768>"},
					{Binding: 0, Split: "SeriesSplit"},
				}, Ret: ret(1, false), RetDiscarded: true},
				{Name: "sr.isin", Args: []plan.Arg{
					{Binding: 1, Split: "SeriesSplit"},
					{Binding: 20, Broadcast: true, Split: "_"},
				}, Ret: ret(2, false), RetDiscarded: true},
				{Name: "sr.fix", Args: []plan.Arg{
					{Binding: 2, Split: "SeriesSplit"},
					{Binding: 3, Mut: true, Split: "SeriesSplit"},
				}},
				{Name: "sr.count", Args: []plan.Arg{
					{Binding: 3, Split: "SeriesSplit"},
				}, Ret: &plan.Arg{Binding: 4, Name: "ret", Split: "AddReduce"}, RetReduced: true},
			},
			Inputs: []plan.Value{
				{Binding: 10, Split: "SizeSplit<32768>", Elems: 32768, ElemBytes: 0},
				{Binding: 0, Split: "SeriesSplit", Elems: 32768, ElemBytes: 24},
				{Binding: 3, Split: "SeriesSplit", Elems: 32768, ElemBytes: 24},
			},
			Outputs:   []plan.Value{{Binding: 4, Split: "AddReduce", Elems: -1, ElemBytes: -1}},
			Broadcast: []int{20},
			Live:      []int{1, 2},
		}},
	}
}

func TestLowerChain(t *testing.T) {
	p := chainPlan()
	w := Lower(p, Options{
		Name: "dc", Elems: 32768, ElemBytes: 24,
		Costs: map[string]CallCost{
			"sr.str.slice": {Name: "str.slice", CyclesPerElem: 1.6},
			"sr.isin":      {Name: "isin", CyclesPerElem: 1.2},
			"sr.count":     {Name: "count", CyclesPerElem: 0.35},
		},
		DefaultCyclesPerElem: 0.4,
	})
	if w.Name != "dc" || w.Elems != 32768 || len(w.Stages) != 1 {
		t.Fatalf("workload shape: %+v", w)
	}
	st := w.Stages[0]
	if st.ElemBytes != 24 {
		t.Errorf("ElemBytes = %d, want 24", st.ElemBytes)
	}
	// Working set: inputs 24+24 (size input excluded) + 2 live x mean 24
	// = 96B -> batch 4*256KiB/96 = 10922.
	if want := (plan.BatchPolicy{}).Elems(96, 32768); st.BatchElems != want {
		t.Errorf("BatchElems = %d, want %d", st.BatchElems, want)
	}
	// First-touch arrays: 0->0, 1->1, 2->2, 3->3; size, broadcast, and the
	// reduced count never become arrays.
	wantOps := []struct {
		name          string
		reads, writes []int
	}{
		{"str.slice", []int{0}, []int{1}},
		{"isin", []int{1}, []int{2}},
		{"sr.fix", []int{2}, []int{3}},
		{"count", []int{3}, nil},
	}
	if len(st.Ops) != len(wantOps) {
		t.Fatalf("got %d ops, want %d", len(st.Ops), len(wantOps))
	}
	for i, want := range wantOps {
		got := st.Ops[i]
		if got.Name != want.name || !reflect.DeepEqual(got.Reads, want.reads) || !reflect.DeepEqual(got.Writes, want.writes) {
			t.Errorf("op %d = %q r%v w%v, want %q r%v w%v", i, got.Name, got.Reads, got.Writes, want.name, want.reads, want.writes)
		}
	}
	if !reflect.DeepEqual(st.Scratch, []int{1, 2}) {
		t.Errorf("Scratch = %v, want [1 2]", st.Scratch)
	}
	if st.Ops[3].CyclesPerElem != 0.35 || st.Ops[2].CyclesPerElem != 0.4 {
		t.Errorf("cycle costs not applied: %+v", st.Ops)
	}
}

func TestLowerWholeStage(t *testing.T) {
	p := &plan.Plan{Stages: []plan.Stage{{
		Kind:  plan.StageWhole,
		Calls: []plan.Call{{Name: "df.join", Args: []plan.Arg{{Binding: 0, Broadcast: true, Split: "_"}}}},
	}}}
	w := Lower(p, Options{Name: "join", Elems: 1024, ElemBytes: 8, DefaultCyclesPerElem: 2})
	st := w.Stages[0]
	if st.BatchElems != 0 || st.Scratch != nil || st.SplitCopies {
		t.Errorf("whole stage must not batch: %+v", st)
	}
	if len(st.Ops) != 1 || st.Ops[0].Name != "df.join" || st.Ops[0].Reads != nil || st.Ops[0].Writes != nil {
		t.Errorf("whole-stage op: %+v", st.Ops)
	}
}
