package planlower

import (
	"mozart/internal/memsim"
	"mozart/internal/plan"
)

// PlanElems derives a workload element count from a plan: the largest
// element count any stage's inputs reported at planning time. Returns -1
// when no stage knows its size (fully lazy or deferred inputs), in which
// case counter simulation has nothing to run on.
func PlanElems(p *plan.Plan) int64 {
	elems := int64(-1)
	for i := range p.Stages {
		if e := p.Stages[i].Elems(); e > elems {
			elems = e
		}
	}
	return elems
}

// SimulateCounters lowers p under o and replays its memory-access trace on
// machine m with the given thread count, returning one simulated counter
// set per plan stage (same order as p.Stages). This is the telemetry
// counters path: the runtime calls it with each evaluation's real plan IR
// so the live metrics can report per-stage cache behaviour in the same
// units as the paper's Table 4 / Figure 6 analysis — derived from the
// planner's actual output, not a hand model.
//
// When o.Elems is zero it is filled from PlanElems; if the plan's size is
// unknown, SimulateCounters returns nil (there is no trace to replay).
func SimulateCounters(p *plan.Plan, o Options, m memsim.Machine, threads int) []memsim.StageCounters {
	if len(p.Stages) == 0 {
		return nil
	}
	if o.Elems <= 0 {
		o.Elems = PlanElems(p)
	}
	if o.Elems <= 0 {
		return nil
	}
	if o.ElemBytes <= 0 {
		o.ElemBytes = 8
	}
	if o.DefaultCyclesPerElem <= 0 {
		// Cache traffic depends on the access pattern, not the per-element
		// compute cost; a nominal cycle count keeps modeled Seconds sane for
		// calls missing from the cost table.
		o.DefaultCyclesPerElem = 1
	}
	w := Lower(p, o)
	res := memsim.Run(m, *w, threads)
	return res.PerStage
}
