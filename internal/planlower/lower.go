// Package planlower compiles a plan IR (internal/plan) plus per-call cost
// specs into a memsim.Workload, so the modeled Table 4 / Figure 4 numbers
// derive from the planner's actual output instead of hand-maintained
// parallel models. The hand models in internal/workloads remain as an
// independent cross-check: a consistency test lowers the real planner's IR
// and asserts stage structure and batch sizes match them.
//
// Lowering rules:
//
//   - Dataflow bindings become dense memsim array ids in first-touch order.
//     Zero-width inputs (SizeSplit-style size arguments), broadcast values,
//     and Reduced results (reductions, type-changing calls) are not arrays:
//     they carry no per-element storage that streams with the batch.
//   - A call's Reads are its non-broadcast, non-mut array arguments; its
//     Writes are its mut arguments plus its (non-reduced) result.
//   - Discarded non-reduced results (pipelined away, never materialized)
//     become Scratch arrays: their batch pieces die in cache.
//   - A split stage batches by the plan's §5.2 BatchPolicy over
//     plan.StageBytes — the same shared byte model the real executor uses —
//     with unknown input widths defaulted to Options.ElemBytes. A whole
//     stage lowers un-batched (each op streams the full range).
package planlower

import (
	"mozart/internal/memsim"
	"mozart/internal/plan"
)

// CallCost is the per-call cost spec for lowering: the memsim op name (hand
// models use short names like "div" for the annotated "vdDiv") and the
// per-element compute cost on the modeled backend.
type CallCost struct {
	Name          string
	CyclesPerElem float64
}

// Options parameterize a lowering.
type Options struct {
	// Name names the produced workload.
	Name string
	// Elems is the workload element count (per array).
	Elems int64
	// ElemBytes is the element width of every lowered array, and the
	// fallback width for stage inputs whose width the planner could not
	// probe.
	ElemBytes int64
	// Costs maps annotated function names (plan Call.Name) to cost specs.
	Costs map[string]CallCost
	// DefaultCyclesPerElem is used for calls missing from Costs.
	DefaultCyclesPerElem float64
	// SplitCopies marks stages whose splitters copy (ImageMagick-style),
	// adding the entry/exit copy pass to each split stage.
	SplitCopies bool
}

// Lower compiles p into a memsim workload under o.
func Lower(p *plan.Plan, o Options) *memsim.Workload {
	w := &memsim.Workload{Name: o.Name, Elems: o.Elems}
	for i := range p.Stages {
		w.Stages = append(w.Stages, lowerStage(&p.Stages[i], p.Batch, o))
	}
	return w
}

func lowerStage(st *plan.Stage, batch plan.BatchPolicy, o Options) memsim.Stage {
	// Bindings that never lower to arrays: zero-width inputs and reduced
	// results.
	skip := map[int]bool{}
	for _, in := range st.Inputs {
		if in.ElemBytes == 0 {
			skip[in.Binding] = true
		}
	}
	for _, c := range st.Calls {
		if c.Ret != nil && c.RetReduced {
			skip[c.Ret.Binding] = true
		}
	}

	arrays := map[int]int{} // binding id -> dense array id, first-touch order
	arrayOf := func(binding int) (int, bool) {
		if skip[binding] {
			return 0, false
		}
		id, ok := arrays[binding]
		if !ok {
			id = len(arrays)
			arrays[binding] = id
		}
		return id, true
	}

	out := memsim.Stage{ElemBytes: o.ElemBytes}
	var scratch []int
	for _, c := range st.Calls {
		cost, ok := o.Costs[c.Name]
		if !ok {
			cost = CallCost{Name: c.Name, CyclesPerElem: o.DefaultCyclesPerElem}
		} else if cost.Name == "" {
			cost.Name = c.Name
		}
		op := memsim.Op{Name: cost.Name, CyclesPerElem: cost.CyclesPerElem}
		for _, a := range c.Args {
			if a.Broadcast {
				continue
			}
			id, ok := arrayOf(a.Binding)
			if !ok {
				continue
			}
			if a.Mut {
				op.Writes = append(op.Writes, id)
			} else {
				op.Reads = append(op.Reads, id)
			}
		}
		if c.Ret != nil && !c.Ret.Broadcast {
			if id, ok := arrayOf(c.Ret.Binding); ok {
				op.Writes = append(op.Writes, id)
				if c.RetDiscarded {
					scratch = append(scratch, id)
				}
			}
		}
		out.Ops = append(out.Ops, op)
	}

	if st.Kind == plan.StageWhole {
		return out
	}

	// §5.2 batching over the shared byte model, defaulting widths the
	// planner could not probe to the lowering's element width.
	widths := st.InputWidths()
	for i, w := range widths {
		if w < 0 {
			widths[i] = o.ElemBytes
		}
	}
	total := st.Elems()
	if total < 0 {
		total = o.Elems
	}
	out.BatchElems = batch.Elems(plan.StageBytes(widths, len(st.Live), o.ElemBytes), total)
	out.Scratch = scratch
	out.SplitCopies = o.SplitCopies
	if total != o.Elems && total >= 0 {
		out.Elems = total
	}
	return out
}
