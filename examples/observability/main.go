// Observability: trace and meter a pipelined evaluation.
//
// The quickstart pipeline runs again, this time with the runtime
// instrumented: a ChromeTrace sink records one timeline lane per worker
// (plus a runtime lane for planning, admission, and the final merge), and a
// Metrics sink aggregates per-stage batch counts, bytes moved under the
// paper's §5.2 model, and cache-batch utilization. Both sinks share the
// event stream via MultiTracer; pprof profiles additionally carry
// mozart_stage/mozart_split labels because ProfileLabels is set.
//
// Run it, then load mozart-trace.json in https://ui.perfetto.dev (or
// chrome://tracing) to see each worker pulling cache-sized batches through
// the fused three-call stage.
package main

import (
	"context"
	"fmt"
	"log"

	"mozart"
	"mozart/internal/annotations/vmathsa"
)

func main() {
	const n = 1 << 20
	d1 := make([]float64, n)
	tmp := make([]float64, n)
	vol := make([]float64, n)
	for i := range d1 {
		d1[i] = float64(i%100)/100 + 0.5
		tmp[i] = 1.0
		vol[i] = 2.0
	}

	trace := mozart.NewChromeTrace()
	metrics := mozart.NewMetrics()
	opts := mozart.WithTracer(mozart.Options{Workers: 4, ProfileLabels: true},
		mozart.MultiTracer(trace, metrics))
	s := mozart.NewSession(opts)

	// d1 = (log1p(d1) + tmp) / vol, then reduce.
	vmathsa.Log1p(s, n, d1, d1)
	vmathsa.Add(s, n, d1, tmp, d1)
	vmathsa.Div(s, n, d1, vol, d1)
	mean := vmathsa.Sum(s, n, d1)

	if err := s.EvaluateContext(context.Background()); err != nil {
		log.Fatal(err)
	}
	total, err := mean.Float64()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean = %.6f\n", total/n)

	if err := trace.WriteFile("mozart-trace.json"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote mozart-trace.json (%d events) — open in https://ui.perfetto.dev\n\n",
		trace.Events())
	fmt.Print(metrics.String())
}
