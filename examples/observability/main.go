// Observability: trace, meter, and serve a pipelined evaluation.
//
// The quickstart pipeline runs again, this time with the runtime fully
// instrumented: a ChromeTrace sink records one timeline lane per worker
// (plus a runtime lane for planning, admission, and the final merge), a
// Metrics sink aggregates per-stage batch counts, bytes moved under the
// paper's §5.2 model, and cache-batch utilization, and a FlightRecorder
// keeps the last evaluations' full event streams (plus the rendered plan)
// for post-mortem dumps. SimulateCounters additionally lowers each
// evaluation's real plan into the memsim cache model and folds simulated
// L1/L2/LLC hit/miss counts and DRAM traffic into the same metrics rows.
//
// Run it, then load mozart-trace.json in https://ui.perfetto.dev (or
// chrome://tracing) to see each worker pulling cache-sized batches through
// the fused three-call stage. Pass -serve :8080 to keep the process alive
// serving the debug surfaces:
//
//	curl localhost:8080/metrics              # Prometheus text exposition
//	curl localhost:8080/debug/mozart/plans   # recent EXPLAIN trees
//	curl localhost:8080/debug/mozart/trace   # Chrome trace JSON
//	curl localhost:8080/debug/mozart/flight  # flight-recorder ring
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"

	"mozart"
	"mozart/internal/annotations/vmathsa"
	"mozart/internal/obs/httpdebug"
)

func main() {
	serve := flag.String("serve", "", "address to serve /metrics and /debug/mozart/* on (e.g. :8080); empty = run once and print")
	flag.Parse()

	const n = 1 << 20
	d1 := make([]float64, n)
	tmp := make([]float64, n)
	vol := make([]float64, n)
	for i := range d1 {
		d1[i] = float64(i%100)/100 + 0.5
		tmp[i] = 1.0
		vol[i] = 2.0
	}

	trace := mozart.NewChromeTrace()
	metrics := mozart.NewMetrics()
	recorder := mozart.NewFlightRecorder(4)
	plans := httpdebug.NewPlanLog(4)
	opts := mozart.WithTracer(
		mozart.Options{Workers: 4, ProfileLabels: true, SimulateCounters: true},
		mozart.MultiTracer(trace, metrics))
	opts = mozart.WithFlightRecorder(opts, recorder)
	prevOnPlan := opts.OnPlan
	opts.OnPlan = func(p *mozart.Plan) {
		prevOnPlan(p)
		plans.OnPlan(p)
	}
	s := mozart.NewSession(opts)

	// d1 = (log1p(d1) + tmp) / vol, then reduce.
	vmathsa.Log1p(s, n, d1, d1)
	vmathsa.Add(s, n, d1, tmp, d1)
	vmathsa.Div(s, n, d1, vol, d1)
	mean := vmathsa.Sum(s, n, d1)

	if err := s.EvaluateContext(context.Background()); err != nil {
		log.Fatal(err)
	}
	total, err := mean.Float64()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean = %.6f\n", total/n)

	if err := trace.WriteFile("mozart-trace.json"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote mozart-trace.json (%d events) — open in https://ui.perfetto.dev\n\n",
		trace.Events())
	fmt.Print(metrics.String())

	if *serve == "" {
		fmt.Println("\n--- /metrics (Prometheus text exposition; -serve :8080 to scrape live) ---")
		fmt.Print(metrics.PrometheusText())
		return
	}
	mux := http.NewServeMux()
	httpdebug.Mount(mux, httpdebug.Options{
		Metrics: metrics, Plans: plans, Trace: trace, Recorder: recorder,
	})
	fmt.Printf("\nserving /metrics and /debug/mozart/{plans,trace,flight} on %s\n", *serve)
	log.Fatal(http.ListenAndServe(*serve, mux))
}
