// Fault tolerance: what happens when an annotation misbehaves.
//
// An annotated call that panics on one batch is recovered into a structured
// StageError instead of crashing the process; with a fallback policy set,
// the runtime restores the in-place-mutated inputs and re-executes the
// stage whole, exactly as the unannotated library would have run, and can
// quarantine the faulty annotation for the rest of the session. On top of
// that, transient errors replay a single batch (RetryPolicy), tripped
// quarantines heal through a circuit-breaker cooldown (BreakerPolicy), and
// concurrent sessions can share a memory budget (Governor).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"mozart"
	"mozart/internal/annotations/vmathsa"
)

// flakyPlus1 is an annotated out[i] = a[i] + 1 whose second batch panics —
// the kind of bug a faulty third-party annotation would introduce.
func flakyPlus1() (mozart.Func, *mozart.Annotation) {
	var calls atomic.Int64
	fn := func(args []any) (any, error) {
		if calls.Add(1) == 2 {
			panic("annotation bug: batch 2 exploded")
		}
		a, out := args[1].([]float64), args[2].([]float64)
		for i := range a {
			out[i] = a[i] + 1
		}
		return nil, nil
	}
	sa := &mozart.Annotation{FuncName: "plus1", Params: []mozart.Param{
		{Name: "size", Type: vmathsa.SizeSplit(0)},
		{Name: "a", Type: vmathsa.ArraySplit(0)},
		{Name: "out", Mut: true, Type: vmathsa.ArraySplit(0)},
	}}
	return fn, sa
}

// plus1Annotation builds the plus1 SA over the given array type expression.
func plus1Annotation(arr mozart.TypeExpr) *mozart.Annotation {
	return &mozart.Annotation{FuncName: "plus1", Params: []mozart.Param{
		{Name: "size", Type: vmathsa.SizeSplit(0)},
		{Name: "a", Type: arr},
		{Name: "out", Mut: true, Type: arr},
	}}
}

// plus1 is the healthy annotated out[i] = a[i] + 1.
func plus1() (mozart.Func, *mozart.Annotation) {
	fn := func(args []any) (any, error) {
		a, out := args[1].([]float64), args[2].([]float64)
		for i := range a {
			out[i] = a[i] + 1
		}
		return nil, nil
	}
	return fn, plus1Annotation(vmathsa.ArraySplit(0))
}

// transientPlus1 is plus1 whose second batch fails once with an error
// wrapping mozart.ErrTransient — a recoverable outage, not a bug.
func transientPlus1() (mozart.Func, *mozart.Annotation) {
	var calls atomic.Int64
	fn := func(args []any) (any, error) {
		if calls.Add(1) == 2 {
			return nil, fmt.Errorf("backend briefly unavailable: %w", mozart.ErrTransient)
		}
		a, out := args[1].([]float64), args[2].([]float64)
		for i := range a {
			out[i] = a[i] + 1
		}
		return nil, nil
	}
	return fn, plus1Annotation(vmathsa.ArraySplit(0))
}

// flakySplitter fails its first Split invocation, then behaves normally.
type flakySplitter struct {
	splits atomic.Int64
	inner  vmathsa.ArraySplitter
}

func (f *flakySplitter) InPlace() bool { return true }
func (f *flakySplitter) Info(v any, t mozart.SplitType) (mozart.RuntimeInfo, error) {
	return f.inner.Info(v, t)
}
func (f *flakySplitter) Split(v any, t mozart.SplitType, start, end int64) (any, error) {
	if f.splits.Add(1) == 1 {
		return nil, fmt.Errorf("split outage: %w", mozart.ErrTransient)
	}
	return f.inner.Split(v, t, start, end)
}
func (f *flakySplitter) Merge(pieces []any, t mozart.SplitType) (any, error) {
	return f.inner.Merge(pieces, t)
}

// oneShotSplitFault is plus1 under an annotation whose splitter fails its
// very first Split and then heals — the shape a circuit breaker recovers
// from.
func oneShotSplitFault() (mozart.Func, *mozart.Annotation) {
	fn, _ := plus1()
	sp := &flakySplitter{}
	arr := mozart.Concrete("ArraySplit", sp, func(args []any) (mozart.SplitType, error) {
		return mozart.NewSplitType("ArraySplit", int64(args[0].(int))), nil
	})
	return fn, plus1Annotation(arr)
}

func inputs(n int) ([]float64, []float64) {
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	return a, make([]float64, n)
}

func main() {
	const n = 1 << 16

	// 1. Fallback off: the panic is isolated into a StageError that names
	// the stage, the call, and the batch range, and poisons the session.
	fn, sa := flakyPlus1()
	a, out := inputs(n)
	s := mozart.NewSession(mozart.Options{Workers: 4, BatchElems: 1 << 13})
	s.Call(fn, sa, n, a, out)
	err := s.EvaluateContext(context.Background())
	var serr *mozart.StageError
	if !errors.As(err, &serr) {
		log.Fatalf("expected a StageError, got %v", err)
	}
	fmt.Printf("fallback off:\n  error: %v\n", serr)
	fmt.Printf("  origin=%s call=%s batch=[%d,%d) panic=%v annotationFault=%v\n",
		serr.Origin, serr.Call, serr.Start, serr.End, serr.PanicValue, serr.AnnotationFault())
	fmt.Printf("  session broken: %v\n\n", s.Err() != nil)

	// 2. FallbackWholeCall: the same fault degrades to whole-call execution
	// and the result is exactly what the plain library would produce.
	fn, sa = flakyPlus1()
	a, out = inputs(n)
	s = mozart.NewSession(mozart.Options{Workers: 4, BatchElems: 1 << 13,
		FallbackPolicy: mozart.FallbackWholeCall})
	s.Call(fn, sa, n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		log.Fatalf("fallback run failed: %v", err)
	}
	ok := true
	for i := range a {
		if out[i] != a[i]+1 {
			ok = false
			break
		}
	}
	st := s.Stats()
	fmt.Printf("fallback whole-call:\n  result correct: %v\n  %s\n\n", ok, st.String())

	// 3. FallbackQuarantine: the faulty annotation is planned whole for the
	// rest of the session, so its splitters are never consulted again.
	fn, sa = flakyPlus1()
	a, out = inputs(n)
	s = mozart.NewSession(mozart.Options{Workers: 4, BatchElems: 1 << 13,
		FallbackPolicy: mozart.FallbackQuarantine})
	s.Call(fn, sa, n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		log.Fatalf("quarantine run failed: %v", err)
	}
	fmt.Printf("fallback quarantine:\n  quarantined: %v\n", s.Quarantined())
	out2 := make([]float64, n)
	s.Call(fn, sa, n, a, out2)
	if err := s.EvaluateContext(context.Background()); err != nil {
		log.Fatalf("second evaluation failed: %v", err)
	}
	fmt.Printf("  second evaluation (planned whole): out2[1]=%v, fallbacks still %d\n\n",
		out2[1], s.Stats().FallbackStages)

	// 4. RetryPolicy: a transient library error (wrapping ErrTransient) on
	// one batch is replayed in place — no fallback, no quarantine, and the
	// result is identical to a fault-free run.
	fn, sa = transientPlus1()
	a, out = inputs(n)
	s = mozart.NewSession(mozart.Options{Workers: 4, BatchElems: 1 << 13,
		RetryPolicy: mozart.RetryPolicy{MaxAttempts: 3}})
	s.Call(fn, sa, n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		log.Fatalf("retry run failed: %v", err)
	}
	st = s.Stats()
	fmt.Printf("batch retry:\n  out[1]=%v (exact), retried batches=%d, fallbacks=%d\n\n",
		out[1], st.RetriedBatches, st.FallbackStages)

	// 5. BreakerPolicy: quarantine with a cooldown. The first fault trips
	// the breaker; after the cooldown the next plan is a half-open probe
	// that splits again, and on success the annotation returns to full
	// split execution.
	fn, sa = oneShotSplitFault()
	a, out = inputs(n)
	s = mozart.NewSession(mozart.Options{Workers: 4, BatchElems: 1 << 13,
		FallbackPolicy: mozart.FallbackQuarantine,
		Breaker:        mozart.BreakerPolicy{Threshold: 1, Cooldown: time.Millisecond}})
	s.Call(fn, sa, n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		log.Fatalf("breaker run failed: %v", err)
	}
	fmt.Printf("circuit breaker:\n  after fault: quarantined=%v\n", s.Quarantined())
	time.Sleep(5 * time.Millisecond) // let the breaker cool down
	out2 = make([]float64, n)
	s.Call(fn, sa, n, a, out2)
	if err := s.EvaluateContext(context.Background()); err != nil {
		log.Fatalf("probe evaluation failed: %v", err)
	}
	st = s.Stats()
	fmt.Printf("  after cooldown probe: quarantined=%v, trips=%d, recoveries=%d\n\n",
		s.Quarantined(), st.BreakerTrips, st.BreakerRecoveries)

	// 6. Governor: two sessions share one memory budget, so their combined
	// modeled working set (workers x batch x elem bytes) never exceeds it —
	// stages shrink their batches or wait instead of thrashing the cache.
	g := mozart.NewGovernor(1 << 16)
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fnOK, saOK := plus1()
			a, out := inputs(n)
			sess := mozart.NewSession(mozart.Options{Workers: 4, BatchElems: 1 << 13, Governor: g})
			sess.Call(fnOK, saOK, n, a, out)
			if err := sess.EvaluateContext(context.Background()); err != nil {
				log.Fatalf("governed run failed: %v", err)
			}
		}()
	}
	wg.Wait()
	fmt.Printf("shared governor:\n  budget=%d high water=%d (never above budget), waits=%d\n",
		g.Budget(), g.HighWater(), g.Waits())
}
