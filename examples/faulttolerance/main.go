// Fault tolerance: what happens when an annotation misbehaves.
//
// An annotated call that panics on one batch is recovered into a structured
// StageError instead of crashing the process; with a fallback policy set,
// the runtime restores the in-place-mutated inputs and re-executes the
// stage whole, exactly as the unannotated library would have run, and can
// quarantine the faulty annotation for the rest of the session.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync/atomic"

	"mozart"
	"mozart/internal/annotations/vmathsa"
)

// flakyPlus1 is an annotated out[i] = a[i] + 1 whose second batch panics —
// the kind of bug a faulty third-party annotation would introduce.
func flakyPlus1() (mozart.Func, *mozart.Annotation) {
	var calls atomic.Int64
	fn := func(args []any) (any, error) {
		if calls.Add(1) == 2 {
			panic("annotation bug: batch 2 exploded")
		}
		a, out := args[1].([]float64), args[2].([]float64)
		for i := range a {
			out[i] = a[i] + 1
		}
		return nil, nil
	}
	sa := &mozart.Annotation{FuncName: "plus1", Params: []mozart.Param{
		{Name: "size", Type: vmathsa.SizeSplit(0)},
		{Name: "a", Type: vmathsa.ArraySplit(0)},
		{Name: "out", Mut: true, Type: vmathsa.ArraySplit(0)},
	}}
	return fn, sa
}

func inputs(n int) ([]float64, []float64) {
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	return a, make([]float64, n)
}

func main() {
	const n = 1 << 16

	// 1. Fallback off: the panic is isolated into a StageError that names
	// the stage, the call, and the batch range, and poisons the session.
	fn, sa := flakyPlus1()
	a, out := inputs(n)
	s := mozart.NewSession(mozart.Options{Workers: 4, BatchElems: 1 << 13})
	s.Call(fn, sa, n, a, out)
	err := s.Evaluate()
	var serr *mozart.StageError
	if !errors.As(err, &serr) {
		log.Fatalf("expected a StageError, got %v", err)
	}
	fmt.Printf("fallback off:\n  error: %v\n", serr)
	fmt.Printf("  origin=%s call=%s batch=[%d,%d) panic=%v annotationFault=%v\n",
		serr.Origin, serr.Call, serr.Start, serr.End, serr.PanicValue, serr.AnnotationFault())
	fmt.Printf("  session broken: %v\n\n", s.Err() != nil)

	// 2. FallbackWholeCall: the same fault degrades to whole-call execution
	// and the result is exactly what the plain library would produce.
	fn, sa = flakyPlus1()
	a, out = inputs(n)
	s = mozart.NewSession(mozart.Options{Workers: 4, BatchElems: 1 << 13,
		FallbackPolicy: mozart.FallbackWholeCall})
	s.Call(fn, sa, n, a, out)
	if err := s.Evaluate(); err != nil {
		log.Fatalf("fallback run failed: %v", err)
	}
	ok := true
	for i := range a {
		if out[i] != a[i]+1 {
			ok = false
			break
		}
	}
	st := s.Stats()
	fmt.Printf("fallback whole-call:\n  result correct: %v\n  %s\n\n", ok, st.String())

	// 3. FallbackQuarantine: the faulty annotation is planned whole for the
	// rest of the session, so its splitters are never consulted again.
	fn, sa = flakyPlus1()
	a, out = inputs(n)
	s = mozart.NewSession(mozart.Options{Workers: 4, BatchElems: 1 << 13,
		FallbackPolicy: mozart.FallbackQuarantine})
	s.Call(fn, sa, n, a, out)
	if err := s.Evaluate(); err != nil {
		log.Fatalf("quarantine run failed: %v", err)
	}
	fmt.Printf("fallback quarantine:\n  quarantined: %v\n", s.Quarantined())
	out2 := make([]float64, n)
	s.Call(fn, sa, n, a, out2)
	if err := s.Evaluate(); err != nil {
		log.Fatalf("second evaluation failed: %v", err)
	}
	fmt.Printf("  second evaluation (planned whole): out2[1]=%v, fallbacks still %d\n",
		out2[1], s.Stats().FallbackStages)
}
