// Image filter under split annotations: the Gotham pipeline's pixel-local
// operations pipeline over cropped row bands (the splitter copies, the
// merger appends, as in the paper's ImageMagick integration), while the
// Gaussian blur — whose boundary condition makes it un-splittable — runs
// whole and breaks the pipeline around it.
package main

import (
	"flag"
	"fmt"
	"log"

	"mozart"
	"mozart/internal/annotations/imagesa"
	"mozart/internal/data"
	"mozart/internal/imagelib"
)

func main() {
	h := flag.Int("height", 720, "image height (width is 4:3)")
	blur := flag.Bool("blur", true, "include the un-splittable Gaussian blur")
	flag.Parse()

	img := data.Photo(*h*4/3, *h, 7)
	s := mozart.NewSession(mozart.Options{Workers: 4})
	fut := s.Track(img) // the splitter copies, so results come via the future

	imagesa.Modulate(s, img, 120, 10, 100)
	imagesa.Colorize(s, img, 0x22, 0x2b, 0x6d, 0.2)
	imagesa.Gamma(s, img, 0.5)
	if *blur {
		imagesa.GaussianBlur(s, img, 1.5) // whole call: breaks the pipeline
	}
	imagesa.SigmoidalContrast(s, img, true, 4, 128)
	imagesa.Level(s, img, 8, 248)

	v, err := fut.Get()
	if err != nil {
		log.Fatal(err)
	}
	out := v.(*imagelib.Image)
	r, g, b, _ := out.At(out.W/2, out.H/2)
	fmt.Printf("filtered %dx%d image; center pixel RGB = (%d, %d, %d)\n", out.W, out.H, r, g, b)

	st := s.Stats()
	fmt.Printf("stages: %d (blur forces a whole-image stage between split stages)\n", st.Stages)
	fmt.Printf("split+merge share of runtime: %.1f%% (copying splitter, §8.5)\n",
		100*float64(st.SplitNS+st.MergeNS)/float64(st.Total()))
}
