// DataFrame pipeline under split annotations: filters producing `unknown`
// split types flow into generic column arithmetic, a grouped aggregation
// splits into partial aggregates that re-aggregate in the merger, and a
// join broadcasts its index while the probe side splits — the §7 Pandas
// integration end to end.
package main

import (
	"fmt"
	"log"

	"mozart"
	"mozart/internal/annotations/framesa"
	"mozart/internal/data"
	"mozart/internal/frame"
)

func main() {
	const rows = 200000
	ratings, users, _ := data.MovieLens(rows, 500, 100, 42)
	s := mozart.NewSession(mozart.Options{Workers: 4})

	// Keep enthusiastic ratings only (filter -> unknown split type).
	high := framesa.GtScalar(s, ratings.Col("rating"), 3)
	liked := framesa.Filter(s, ratings, high)

	// Join the filtered ratings against the broadcast user index.
	ix := frame.NewIndex(users, "userId")
	joined := framesa.JoinIndexed(s, liked, ix, "userId", frame.Inner)

	// Average liked-rating by gender: chunks aggregate independently and
	// the GroupSplit merge re-aggregates partials.
	g := framesa.GroupByAgg(s, joined, []string{"gender"},
		[]frame.AggSpec{
			{Col: "rating", Kind: frame.AggMean, As: "avg"},
			{Col: "rating", Kind: frame.AggCount, As: "n"},
		})
	out := framesa.ToDataFrame(s, g)

	v, err := out.Get() // forces evaluation of the whole pipeline
	if err != nil {
		log.Fatal(err)
	}
	df := v.(*frame.DataFrame)
	for r := 0; r < df.NRows(); r++ {
		fmt.Printf("gender=%s  avg=%.3f  n=%d\n",
			df.Col("gender").S[r], df.Col("avg").F[r], df.Col("n").I[r])
	}
	st := s.Stats()
	fmt.Printf("filter+join+groupby ran in %d stage(s); %d piece calls\n", st.Stages, st.Calls)
}
