// The annotate tool end to end: parse a split-annotation DSL snippet
// (paper Listing 2/3 syntax), show the generated wrapper code, and run the
// pre-generated wrappers from internal/annotations/gensa — which were
// produced by `go run mozart/cmd/annotate -in vmath.sa` — through a real
// pipeline.
package main

import (
	"fmt"
	"log"
	"strings"

	"mozart"
	"mozart/internal/annotations/gensa"
	"mozart/internal/satool"
)

const snippet = `
package demo
import vm "mozart/internal/vmath"

splittype ArraySplit(int);
splittype SizeSplit(int);

@splittable(size: SizeSplit(size), a: ArraySplit(size), mut out: ArraySplit(size))
func Log1p(size int, a []float64, out []float64);
`

func main() {
	f, err := satool.Parse(snippet)
	if err != nil {
		log.Fatal(err)
	}
	code, err := satool.Generate(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== generated wrapper (first lines) ===")
	for i, line := range strings.Split(code, "\n") {
		if i > 14 {
			break
		}
		fmt.Println(line)
	}

	fmt.Println("\n=== running the checked-in generated wrappers (gensa) ===")
	const n = 100000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i%10) + 1
		b[i] = 2
	}
	s := mozart.NewSession(mozart.Options{Workers: 4})
	gensa.Log1p(s, n, a, a)
	gensa.Mul(s, n, a, b, a)
	total := gensa.Sum(s, n, a)
	v, err := total.Float64()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum(2*log1p(a)) = %.4f, computed in %d pipelined stage(s)\n",
		v, s.Stats().Stages)
}
