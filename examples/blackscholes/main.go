// Black Scholes end to end: the paper's §2.1 motivating workload, runnable
// in three modes for comparison:
//
//	go run ./examples/blackscholes -mode base    # unmodified library
//	go run ./examples/blackscholes -mode mozart  # split annotations
//	go run ./examples/blackscholes -mode weld    # fused-IR comparator
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"mozart/internal/workloads"
)

func main() {
	mode := flag.String("mode", "mozart", "base|mozart|mozart-nopipe|weld")
	n := flag.Int("n", 1<<21, "number of options")
	threads := flag.Int("threads", 4, "worker threads")
	flag.Parse()

	spec, err := workloads.ByName("blackscholes-mkl")
	if err != nil {
		log.Fatal(err)
	}
	cfg := workloads.Config{Scale: *n, Threads: *threads}

	start := time.Now()
	checksum, err := spec.Run(workloads.Variant(*mode), cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("mode=%s options=%d threads=%d\n", *mode, *n, *threads)
	fmt.Printf("checksum=%.4f (identical across modes)\n", checksum)
	fmt.Printf("time=%v (%.1f ns/option over 32 vector calls)\n",
		elapsed, float64(elapsed.Nanoseconds())/float64(*n))
}
