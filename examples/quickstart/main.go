// Quickstart: annotate-and-pipeline in 40 lines.
//
// Three MKL-style vector calls are captured lazily by a Mozart session,
// planned into a single pipelined stage (their ArraySplit types match), and
// executed in cache-sized batches across workers. The arrays are updated in
// place; reading the reduction future forces evaluation.
package main

import (
	"fmt"
	"log"

	"mozart"
	"mozart/internal/annotations/vmathsa"
)

func main() {
	const n = 1 << 18
	d1 := make([]float64, n)
	tmp := make([]float64, n)
	vol := make([]float64, n)
	for i := range d1 {
		d1[i] = float64(i%100)/100 + 0.5
		tmp[i] = 1.0
		vol[i] = 2.0
	}

	s := mozart.NewSession(mozart.Options{Workers: 4})

	// The Listing 1 pipeline from the paper: d1 = (log1p(d1) + tmp) / vol.
	vmathsa.Log1p(s, n, d1, d1)
	vmathsa.Add(s, n, d1, tmp, d1)
	vmathsa.Div(s, n, d1, vol, d1)
	mean := vmathsa.Sum(s, n, d1)

	total, err := mean.Float64()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean = %.6f\n", total/n)

	st := s.Stats()
	fmt.Printf("executed as %d stage(s), %d batches, %d piece-level calls\n",
		st.Stages, st.Batches, st.Calls)
}
