package mozart_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"mozart"
	"mozart/internal/annotations/vmathsa"
)

// EvaluateContext is the primary evaluation entrypoint: the caller's context
// bounds the run, and cancellation (or a deadline) stops workers at the next
// batch boundary with context.Canceled in the error chain.
func ExampleSession_EvaluateContext() {
	const n = 1 << 12
	a, out := make([]float64, n), make([]float64, n)
	for i := range a {
		a[i] = float64(i) / n
	}

	s := mozart.NewSession(mozart.Options{Workers: 2})
	vmathsa.Log1p(s, n, a, out)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.EvaluateContext(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out[0] = %.1f, stages = %d\n", out[0], s.Stats().Stages)
	// Output: out[0] = 0.0, stages = 1
}

// WithTracer attaches observability sinks to a session: here a Chrome-trace
// sink (loadable in https://ui.perfetto.dev) and a Metrics aggregator share
// the event stream through MultiTracer.
func ExampleWithTracer() {
	const n = 1 << 12
	a, tmp := make([]float64, n), make([]float64, n)
	for i := range a {
		a[i], tmp[i] = 1, 1
	}

	trace := mozart.NewChromeTrace()
	metrics := mozart.NewMetrics()
	s := mozart.NewSession(mozart.WithTracer(
		mozart.Options{Workers: 2, BatchElems: 1 << 10},
		mozart.MultiTracer(trace, metrics)))

	// Two elementwise calls over matching split types pipeline into one
	// stage; each of the 4 batches flows through both calls.
	vmathsa.Log1p(s, n, a, a)
	vmathsa.Add(s, n, a, tmp, a)
	if err := s.EvaluateContext(context.Background()); err != nil {
		log.Fatal(err)
	}

	// After the run, trace.WriteFile("trace.json") saves a Perfetto-loadable
	// timeline with one lane per worker.
	sn := metrics.Snapshot()
	fmt.Printf("stages = %d, batches = %d\n", len(sn.Stages), sn.Stages[0].Batches)

	// Output: stages = 1, batches = 4
}
