module mozart

go 1.22
