# Developer and CI entry points. `make ci` is what the GitHub Actions
# workflow runs: vet (fail fast), the deprecation gate, build, plain tests,
# the race detector over the runtime-heavy packages, the flakiness gate (the
# fault-tolerance suites twice under -race, so a nondeterministic
# retry/breaker/admission test cannot land green), the zero-copy pool
# smoke (AllocsPerRun, alias checks, leak suite), the faults-experiment
# smoke, the telemetry smokes (trace, explain, Prometheus golden, bench
# snapshot), the out-of-core spill smoke, the adaptive-planner tune smoke
# (online batch calibration vs the static heuristic), the mozartd
# serve smoke (boot, shed, SIGTERM drain), and the observability smoke
# (traceparent echo, span trees, OpenMetrics exemplars, burn rates,
# trace-keyed flight lookup).

GO ?= go

.PHONY: ci vet deprecations build test race flaky pool-smoke smoke-faults trace-smoke explain-smoke explain-golden prom-golden bench-smoke bench-snapshot bench serve-smoke slo-smoke spill-smoke tune-smoke soak

ci: vet deprecations build test race flaky pool-smoke smoke-faults trace-smoke explain-smoke prom-golden bench-smoke spill-smoke tune-smoke serve-smoke slo-smoke

vet:
	$(GO) vet ./...

# Deprecation gate: new uses of deprecated APIs (Session.Evaluate, the
# Stats type alias) fail CI. Prefers staticcheck's SA1019 when installed;
# falls back to the repo's dependency-free AST checker otherwise.
deprecations:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "deprecations: staticcheck -checks SA1019 ./..."; \
		staticcheck -checks SA1019 ./... ; \
	else \
		$(GO) run ./cmd/depcheck ; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Flakiness gate: the resilience machinery (retry, breakers, admission,
# fault injection, the spill store, the streaming path, the serving layer)
# is timing-sensitive by nature; run its suites twice under the race
# detector to shake out order dependence. The obs packages ride along for
# the tracing/SLO surfaces (concurrent span recording, exemplar stamping,
# burn-rate windows) exercised by the serve tests.
flaky:
	$(GO) test -race -count=2 ./internal/core ./internal/faultinject ./internal/serve ./internal/spill ./internal/annotations/imagesa ./internal/tune ./internal/obs ./internal/obs/httpdebug

# Zero-copy hot-path gate: the AllocsPerRun == 0 assertions on the warm
# view-split loops, the pointer-identity alias and stitch checks, the
# pooled-buffer leak suite (poison mode) and steady-state zero-spawn proof,
# and the aliasing recovery regressions (retry/fallback restoring storage
# that pieces alias).
pool-smoke:
	$(GO) test -count=1 -run 'ZeroAllocs|Stitch|MergeFallback|ViewSplitsCounted' ./internal/annotations/vmathsa
	$(GO) test -count=1 -run 'TestWorkerPool|TestSteadyState|TestSharedWorkerPool|TestDisableWorkerPool|TestPoison' ./internal/core
	$(GO) test -count=1 -run 'TestRetryRestoresAliasedBands|TestFallbackRestoresAliasedBands|TestWriteBackAliasesValue|TestCopySplitterKeepsCopySemantics' ./internal/annotations/imagesa

# mozartd's end-to-end smoke: boot on an ephemeral port, evaluate for a
# well-provisioned tenant, assert the over-budget tenant sheds with 429,
# SIGTERM, and assert the drain returned every carved byte (the binary
# exits non-zero on any violation).
serve-smoke:
	$(GO) run ./cmd/mozartd -smoke

# mozartd's observability smoke: a traced evaluation end to end — the
# traceparent echoed, the span tree served (tree + OTLP/JSON), the latency
# exemplar negotiated via OpenMetrics, a tenant with an unmeetable latency
# objective burning error budget on both windows, a 504's trace id
# resolving to its flight recording, and the structured request log naming
# the trace (the binary exits non-zero on any violation).
slo-smoke:
	$(GO) run ./cmd/mozartd -slo-smoke

# The multi-tenant chaos soak on its own: concurrent tenants through fault
# injection (transient faults + seeded latency) under the race detector.
soak:
	$(GO) test -race -count=2 -run TestChaosSoak ./internal/serve

# Smoke-run the fault-tolerance ablation end to end.
smoke-faults:
	$(GO) run ./cmd/sabench -experiment faults

# Smoke-run the observability layer: trace two workloads, write Chrome
# trace JSON, and re-parse it (the experiment exits non-zero on malformed
# or empty traces).
trace-smoke:
	$(GO) run ./cmd/sabench -experiment trace -scalediv 8

# Smoke-run the plan IR path: print the planner's real plan for every
# workload and validate the rendering against the embedded golden file
# (the experiment exits non-zero on a mismatch).
explain-smoke:
	$(GO) run ./cmd/sabench -experiment explain

# Regenerate the explain golden file after an intentional planner change.
explain-golden:
	SABENCH_UPDATE_GOLDEN=cmd/sabench/testdata/explain.golden $(GO) run ./cmd/sabench -experiment explain
	UPDATE_GOLDEN=1 $(GO) test -run TestExplainGolden .

# The Prometheus exposition contract: the golden rendering and the
# snapshot-consistency test (every /metrics sample accounted for by
# Metrics.Snapshot and vice versa).
prom-golden:
	$(GO) test ./internal/obs -run 'TestPrometheus' -count=1

# Smoke-run the adaptive planner loop on three workloads: the tuner's
# online golden-section sweep against the memsim model, asserting the
# calibrated choice never falls below 0.95x the static heuristic's modeled
# throughput (the experiment exits non-zero otherwise).
tune-smoke:
	SABENCH_TUNE_WORKLOADS=blackscholes-numpy,datacleaning-pandas,crimeindex-pandas $(GO) run ./cmd/sabench -experiment autotune

# Smoke-run the out-of-core ladder end to end: blackscholes-ooc against a
# 4x-undersized Governor budget must finish in streaming mode with exact
# checksums, CRC-checked spill traffic, and zero spill residue (the
# experiment exits non-zero on any violated invariant).
spill-smoke:
	$(GO) run ./cmd/sabench -experiment spill

# Smoke-run the BENCH trajectory emitter into a throwaway directory: all 16
# workloads through the real planner and the counter simulation, snapshot
# written and schema-validated (the experiment exits non-zero otherwise).
bench-smoke:
	$(GO) run ./cmd/sabench -experiment bench -benchdir "$$(mktemp -d)"

# Emit (and regression-compare) a real BENCH_<git-sha>.json snapshot in the
# repo root; commit it to extend the performance trajectory.
bench-snapshot:
	$(GO) run ./cmd/sabench -experiment bench -benchdir .

# Regenerate the paper's figures/tables (see cmd/sabench).
bench:
	$(GO) run ./cmd/sabench -experiment all
