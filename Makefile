# Developer and CI entry points. `make ci` is what the GitHub Actions
# workflow runs: vet (fail fast), build, plain tests, the race detector
# over the runtime-heavy packages, the flakiness gate (the fault-tolerance
# suites twice under -race, so a nondeterministic retry/breaker/admission
# test cannot land green), and the faults-experiment smoke.

GO ?= go

.PHONY: ci vet build test race flaky smoke-faults trace-smoke explain-smoke explain-golden bench

ci: vet build test race flaky smoke-faults trace-smoke explain-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Flakiness gate: the resilience machinery (retry, breakers, admission,
# fault injection) is timing-sensitive by nature; run its suites twice
# under the race detector to shake out order dependence.
flaky:
	$(GO) test -race -count=2 ./internal/core ./internal/faultinject

# Smoke-run the fault-tolerance ablation end to end.
smoke-faults:
	$(GO) run ./cmd/sabench -experiment faults

# Smoke-run the observability layer: trace two workloads, write Chrome
# trace JSON, and re-parse it (the experiment exits non-zero on malformed
# or empty traces).
trace-smoke:
	$(GO) run ./cmd/sabench -experiment trace -scalediv 8

# Smoke-run the plan IR path: print the planner's real plan for every
# workload and validate the rendering against the embedded golden file
# (the experiment exits non-zero on a mismatch).
explain-smoke:
	$(GO) run ./cmd/sabench -experiment explain

# Regenerate the explain golden file after an intentional planner change.
explain-golden:
	SABENCH_UPDATE_GOLDEN=cmd/sabench/testdata/explain.golden $(GO) run ./cmd/sabench -experiment explain
	UPDATE_GOLDEN=1 $(GO) test -run TestExplainGolden .

# Regenerate the paper's figures/tables (see cmd/sabench).
bench:
	$(GO) run ./cmd/sabench -experiment all
