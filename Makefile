# Developer and CI entry points. `make ci` is what the GitHub Actions
# workflow runs: vet, build, plain tests, then the race detector over the
# runtime-heavy packages.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the paper's figures/tables (see cmd/sabench).
bench:
	$(GO) run ./cmd/sabench -experiment all
