// Command mozart-demo shows the Mozart runtime working on a small pipeline
// with call logging enabled: graph capture, stage planning, batched
// pipelined execution, and lazy evaluation on access.
package main

import (
	"flag"
	"fmt"
	"log"

	"mozart/internal/annotations/vmathsa"
	"mozart/internal/core"
	"mozart/internal/data"
	"mozart/internal/plan"
)

func main() {
	n := flag.Int("n", 1<<16, "vector length")
	workers := flag.Int("workers", 4, "worker threads")
	batch := flag.Int64("batch", 0, "batch elements (0 = C*L2 heuristic)")
	verbose := flag.Bool("v", false, "log every piece-level call")
	flag.Parse()

	opts := core.Options{Workers: *workers, BatchElems: *batch}
	if *verbose {
		opts.Logf = log.Printf
	}
	s := core.NewSession(opts)

	price, strike, tt := data.OptionsData(*n, 1)
	d1 := make([]float64, *n)

	fmt.Printf("capturing 4 annotated vector calls over %d elements...\n", *n)
	vmathsa.Div(s, *n, price, strike, d1) // d1 = price / strike
	vmathsa.Ln(s, *n, d1, d1)             // d1 = ln(d1)
	vmathsa.Add(s, *n, d1, tt, d1)        // d1 += t
	total := vmathsa.Sum(s, *n, d1)       // reduction

	fmt.Printf("pending calls before access: %d (nothing has executed)\n", s.Pending())

	// Show the planner's output before anything runs: Session.Plan builds
	// the plan IR read-only, so the evaluation below is unaffected.
	p, err := s.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Render(p))

	v, err := total.Float64()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum = %.4f (forced evaluation)\n", v)

	st := s.Stats()
	fmt.Printf("stages: %d  batches: %d  piece calls: %d\n", st.Stages, st.Batches, st.Calls)
	fmt.Printf("time breakdown: %s\n", st.String())
	fmt.Println("the 4 calls pipelined into one stage: each batch of the arrays")
	fmt.Println("went through div -> ln -> add -> sum while resident in cache.")
}
