// Command annotate is the paper's §4.1 annotate tool: it reads a
// split-annotation DSL file (Listing 3 syntax) describing functions of an
// existing library and generates a Go package of wrapper functions that
// register lazy calls with a Mozart session instead of executing them.
//
// Usage:
//
//	annotate -in vmath.sa -out wrappers.gen.go
//
// The generated package expects a hand-written sibling file defining
//
//	var splitImpls = map[string]satool.SplitTypeImpl{...}
//
// with the splitting API (§3.3) for every split type the DSL references.
package main

import (
	"flag"
	"fmt"
	"os"

	"mozart/internal/satool"
)

func main() {
	in := flag.String("in", "", "input .sa annotation file")
	out := flag.String("out", "", "output .go file (default: stdout)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "annotate: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	f, err := satool.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	code, err := satool.Generate(f)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "annotate: wrote %s (%d annotated functions, %d split types)\n",
		*out, len(f.Funcs), len(f.SplitTypes))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "annotate:", err)
	os.Exit(1)
}
