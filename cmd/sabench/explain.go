package main

import (
	_ "embed"
	"fmt"
	"os"
	"strings"

	"mozart/internal/plan"
	"mozart/internal/workloads"
)

// explainGolden pins the rendered plans: the planner's output for every
// workload is part of the repo's contract, and any planner change shows up
// as a golden diff. Regenerate with
//
//	SABENCH_UPDATE_GOLDEN=cmd/sabench/testdata/explain.golden go run ./cmd/sabench -experiment explain
//
//go:embed testdata/explain.golden
var explainGolden string

// explain runs every workload's Mozart variant and prints the planner's
// real plan IR rendered as an EXPLAIN tree — not a hand-written
// description, but the same *plan.Plan the executor runs and planlower
// compiles into the machine model. Iterative workloads evaluate several
// times; identical plans are deduplicated so each distinct plan prints
// once. The scale is fixed (scaleDiv is ignored) so the rendered split
// sizes and batch counts are reproducible, and the combined output is
// checked against an embedded golden file.
func explain(int) {
	var b strings.Builder
	fmt.Fprintln(&b, "=== Explain: real planner output (plan IR) for all 15 workloads ===")
	for _, spec := range workloads.All() {
		var plans []*plan.Plan
		cfg := workloads.Config{
			Scale:   spec.DefaultScale / 16,
			Threads: 4,
			OnPlan:  func(p *plan.Plan) { plans = append(plans, p) },
		}
		if _, err := spec.Run(workloads.Mozart, cfg); err != nil {
			fatalf("explain: %s: %v", spec.Name, err)
		}
		if len(plans) == 0 {
			fatalf("explain: %s: no plan captured", spec.Name)
		}
		seen := map[string]bool{}
		var distinct []string
		for _, p := range plans {
			r := plan.Render(p)
			if !seen[r] {
				seen[r] = true
				distinct = append(distinct, r)
			}
		}
		fmt.Fprintf(&b, "--- %s: %d evaluation%s, %d distinct plan%s ---\n",
			spec.Name, len(plans), plural(len(plans)), len(distinct), plural(len(distinct)))
		for _, r := range distinct {
			fmt.Fprint(&b, r)
		}
	}
	out := b.String()
	fmt.Print(out)

	if path := os.Getenv("SABENCH_UPDATE_GOLDEN"); path != "" {
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			fatalf("explain: writing golden: %v", err)
		}
		fmt.Printf("explain: wrote %d bytes to %s (rebuild to re-embed)\n", len(out), path)
		return
	}
	if out != explainGolden {
		fatalf("explain: output differs from the embedded golden file; the planner's " +
			"plans changed.\nRegenerate with: SABENCH_UPDATE_GOLDEN=cmd/sabench/testdata/explain.golden " +
			"go run ./cmd/sabench -experiment explain")
	}
	fmt.Println("explain: all plans match cmd/sabench/testdata/explain.golden")
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
