package main

import (
	"encoding/json"
	"fmt"
	"os"

	"mozart/internal/obs"
	"mozart/internal/workloads"
)

// trace runs a vector-math workload and a dataframe workload under the
// observability layer: a Chrome-trace sink (one lane per worker, loadable in
// chrome://tracing or https://ui.perfetto.dev) plus the aggregating metrics
// sink, whose per-stage table is printed after each run. The emitted JSON is
// re-read and parsed as a smoke check; a trace that does not parse or has no
// events fails the process.
func trace(scaleDiv int) {
	fmt.Println("=== Trace: runtime observability (Chrome trace + per-stage metrics) ===")
	for _, name := range []string{"blackscholes-mkl", "datacleaning-pandas"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			fatalf("trace: %v", err)
		}
		chrome := obs.NewChromeTrace()
		metrics := obs.NewMetrics()
		cfg := workloads.Config{
			Scale:   spec.DefaultScale / scaleDiv,
			Threads: 4,
			Tracer:  obs.Multi(chrome, metrics),
		}
		if _, err := spec.Run(workloads.Mozart, cfg); err != nil {
			fatalf("trace: %s: %v", name, err)
		}

		path := fmt.Sprintf("sabench-trace-%s.json", name)
		if err := chrome.WriteFile(path); err != nil {
			fatalf("trace: %s: writing %s: %v", name, path, err)
		}
		if err := validateTraceFile(path); err != nil {
			fatalf("trace: %s: %v", name, err)
		}
		fmt.Printf("--- %s: %d trace events -> %s (open in https://ui.perfetto.dev) ---\n",
			name, chrome.Events(), path)
		fmt.Print(metrics.String())
		fmt.Println()
	}
}

// validateTraceFile re-reads an emitted trace and checks it is well-formed
// Chrome trace_event JSON with at least one event.
func validateTraceFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s is not valid trace JSON: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s contains no trace events", path)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
