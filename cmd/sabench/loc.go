package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// table3 reproduces the integration-effort comparison: lines of code an
// annotator wrote per library (SAs + splitting API) versus the size of the
// compiler-based comparator's engine. Counts are taken from this
// repository's sources at runtime.
func table3(int) {
	fmt.Println("=== Table 3: integration effort (lines of code, this repository) ===")
	root, err := moduleRoot()
	if err != nil {
		fmt.Println("cannot locate module root:", err)
		return
	}

	type entry struct {
		lib      string
		dir      string
		splitAPI []string // files counted as splitting API
		paperSA  int      // paper's Mozart total LoC
		paperWld int      // paper's Weld integration LoC (0 = unsupported)
	}
	entries := []entry{
		{"NumPy", "internal/annotations/tensorsa", nil, 84, 394},
		{"Pandas", "internal/annotations/framesa", []string{"splits.go"}, 121, 2076},
		{"spaCy", "internal/annotations/nlpsa", nil, 20, 0},
		{"MKL", "internal/annotations/vmathsa", []string{"splits.go"}, 155, 0},
		{"ImageMagick", "internal/annotations/imagesa", nil, 112, 0},
	}

	w := tw()
	fmt.Fprintln(w, "library\t#funcs\tSA LoC\tsplit API LoC\ttotal\tpaper Mozart LoC\tpaper Weld LoC")
	for _, e := range entries {
		funcs, saLoc, apiLoc := 0, 0, 0
		dir := filepath.Join(root, e.dir)
		files, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(w, "%s\terror: %v\n", e.lib, err)
			continue
		}
		apiSet := map[string]bool{}
		for _, f := range e.splitAPI {
			apiSet[f] = true
		}
		for _, f := range files {
			name := f.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			loc, nfuncs := countGoFile(filepath.Join(dir, name))
			if apiSet[name] {
				apiLoc += loc
			} else {
				saLoc += loc
				funcs += nfuncs
			}
		}
		weld := "-"
		if e.paperWld > 0 {
			weld = fmt.Sprint(e.paperWld)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%s\n", e.lib, funcs, saLoc, apiLoc, saLoc+apiLoc, e.paperSA, weld)
	}
	w.Flush()

	engineLoc := 0
	for _, f := range []string{"internal/weldsim/weldsim.go", "internal/weldsim/relational.go"} {
		loc, _ := countGoFile(filepath.Join(root, f))
		engineLoc += loc
	}
	coreLoc := 0
	coreDir := filepath.Join(root, "internal/core")
	if files, err := os.ReadDir(coreDir); err == nil {
		for _, f := range files {
			if strings.HasSuffix(f.Name(), ".go") && !strings.HasSuffix(f.Name(), "_test.go") {
				loc, _ := countGoFile(filepath.Join(coreDir, f.Name()))
				coreLoc += loc
			}
		}
	}
	fmt.Printf("(for scale: the Mozart runtime itself is %d LoC and the weldsim compiler engine %d LoC —\n", coreLoc, engineLoc)
	fmt.Println(" neither counts toward integration effort, matching the paper's methodology)")
}

// countGoFile counts non-blank, non-comment-only lines and exported
// top-level functions.
func countGoFile(path string) (loc, funcs int) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		loc++
		if strings.HasPrefix(line, "func ") {
			rest := strings.TrimPrefix(line, "func ")
			if len(rest) > 0 && rest[0] >= 'A' && rest[0] <= 'Z' {
				funcs++
			}
		}
	}
	return loc, funcs
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
