package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// synthReport builds a minimal valid snapshot with the given per-point
// modeled runtime.
func synthReport(sha string, seconds func(name string, threads int) float64) benchReport {
	r := benchReport{Schema: benchSchema, GitSHA: sha, Machine: "test", Threads: []int{1, 4}}
	for _, name := range []string{"blackscholes-mkl", "datacleaning-pandas"} {
		bw := benchWorkload{Name: name, Library: "x", Scale: 1, Evaluations: 1, DistinctPlans: 1}
		for _, t := range r.Threads {
			bw.Points = append(bw.Points, benchPoint{Threads: t, Seconds: seconds(name, t)})
		}
		r.Workloads = append(r.Workloads, bw)
	}
	return r
}

// TestCompareBenchFlagsSlowdown is the comparator contract: a synthetic >5%
// modeled slowdown is flagged (so the bench run exits non-zero), a slowdown
// inside the tolerance is not, and points only one snapshot has are ignored.
func TestCompareBenchFlagsSlowdown(t *testing.T) {
	prev := synthReport("aaa", func(string, int) float64 { return 0.100 })

	// 6% slower on one point only.
	cur := synthReport("bbb", func(name string, threads int) float64 {
		if name == "blackscholes-mkl" && threads == 4 {
			return 0.106
		}
		return 0.100
	})
	regs := compareBench(prev, cur, benchTolerance)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly 1", regs)
	}
	if !strings.Contains(regs[0], "blackscholes-mkl 4 threads") {
		t.Errorf("regression line %q does not name the point", regs[0])
	}

	// 4% slower everywhere: inside tolerance.
	cur = synthReport("ccc", func(string, int) float64 { return 0.104 })
	if regs := compareBench(prev, cur, benchTolerance); len(regs) != 0 {
		t.Errorf("4%% slowdown flagged: %v", regs)
	}

	// A workload new in cur has no baseline and is not a regression.
	cur = synthReport("ddd", func(string, int) float64 { return 0.100 })
	cur.Workloads = append(cur.Workloads, benchWorkload{
		Name: "brand-new", Points: []benchPoint{{Threads: 1, Seconds: 99}, {Threads: 4, Seconds: 99}},
	})
	if regs := compareBench(prev, cur, benchTolerance); len(regs) != 0 {
		t.Errorf("new workload flagged: %v", regs)
	}

	// Speedups are never regressions.
	cur = synthReport("eee", func(string, int) float64 { return 0.050 })
	if regs := compareBench(prev, cur, benchTolerance); len(regs) != 0 {
		t.Errorf("speedup flagged: %v", regs)
	}
}

func TestValidateBench(t *testing.T) {
	good := synthReport("aaa", func(string, int) float64 { return 0.1 })
	if err := validateBench(good); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := good
	bad.Schema = "mozart-bench/v0"
	if err := validateBench(bad); err == nil {
		t.Error("wrong schema accepted")
	}
	bad = synthReport("aaa", func(string, int) float64 { return 0 })
	if err := validateBench(bad); err == nil {
		t.Error("zero runtime accepted")
	}
	bad = good
	bad.Workloads[0].Points = bad.Workloads[0].Points[:1]
	if err := validateBench(bad); err == nil {
		t.Error("missing thread point accepted")
	}
}

// TestNewestBench: the comparator loads the most recent snapshot by mtime,
// skips the current sha's own file, and fails loudly on a corrupt baseline.
func TestNewestBench(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r benchReport, mod time.Time) {
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	now := time.Now()
	write("BENCH_old.json", synthReport("old", func(string, int) float64 { return 1 }), now.Add(-2*time.Hour))
	write("BENCH_new.json", synthReport("new", func(string, int) float64 { return 2 }), now.Add(-time.Hour))
	write("BENCH_cur.json", synthReport("cur", func(string, int) float64 { return 3 }), now)

	got, path, err := newestBench(dir, "cur")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.GitSHA != "new" {
		t.Fatalf("loaded %+v from %s, want sha new (current sha skipped)", got, path)
	}

	if _, _, err := newestBench(t.TempDir(), "cur"); err != nil {
		t.Fatalf("empty dir should be a clean no-baseline, got %v", err)
	}

	if err := os.WriteFile(filepath.Join(dir, "BENCH_zzz.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := newestBench(dir, "cur"); err == nil {
		t.Error("corrupt newest baseline did not error")
	}
}
