package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"mozart/internal/core"
	"mozart/internal/obs"
	"mozart/internal/spill"
	"mozart/internal/workloads"
)

// spillSmoke drives the out-of-core pressure ladder end to end on the host:
// the blackscholes-ooc workload, sized to several times a deliberately tiny
// Governor budget, must complete in streaming mode — splitting its generator
// window by window and spilling CRC-checked merge partials — and still
// produce the Base variant's exact checksum, with the budget never exceeded
// and no spill stores or files left behind. Any violated invariant fails the
// run, so `make spill-smoke` is a CI gate, not a demo.
func spillSmoke(scaleDiv int) {
	fmt.Println("=== Spill smoke: out-of-core streaming vs a 4x-undersized budget (measured) ===")

	scale := (1 << 18) / scaleDiv // 32 B/elem modeled: price+strike+tt in, result out
	workingSet := int64(scale) * 32
	budget := workingSet / 4

	spec, err := workloads.ByName("blackscholes-ooc")
	if err != nil {
		fatalf("spill: %v", err)
	}

	base, err := spec.Run(workloads.Base, workloads.Config{Scale: scale, Threads: 1})
	if err != nil {
		fatalf("spill: base run: %v", err)
	}

	dir, err := os.MkdirTemp("", "sabench-spill-")
	if err != nil {
		fatalf("spill: %v", err)
	}
	defer os.RemoveAll(dir)

	tally := &spillTally{}
	g := core.NewGovernor(budget)
	got, err := spec.Run(workloads.Mozart, workloads.Config{
		Scale:     scale,
		Threads:   4,
		Governor:  g,
		OutOfCore: true,
		SpillDir:  dir,
		Tracer:    tally,
	})
	if err != nil {
		fatalf("spill: out-of-core run: %v", err)
	}

	w := tw()
	fmt.Fprintln(w, "working set\tbudget\thigh water\tpeak level\ttransitions\tspill frames\tspill bytes\tchecksum match")
	frames, bytes := tally.totals()
	fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%d\t%s\t%v\n",
		mib(workingSet), mib(budget), mib(g.HighWater()), g.MaxLevel(),
		g.PressureTransitions(), frames, mib(bytes), got == base)
	w.Flush()

	if rel := math.Abs(got-base) / (1 + math.Abs(base)); rel > 1e-9 {
		fatalf("spill: checksum diverged: out-of-core %v vs base %v", got, base)
	}
	if g.MaxLevel() != core.PressureOutOfCore {
		fatalf("spill: peak pressure %v, want %v", g.MaxLevel(), core.PressureOutOfCore)
	}
	if frames == 0 || bytes == 0 {
		fatalf("spill: no merge partials spilled (%d frames, %d bytes)", frames, bytes)
	}
	if hw := g.HighWater(); hw > budget {
		fatalf("spill: high water %d exceeded the %d-byte budget", hw, budget)
	}
	if inUse := g.InUse(); inUse != 0 {
		fatalf("spill: governor still holds %d bytes", inUse)
	}
	if n := spill.OpenStores(); n != 0 {
		fatalf("spill: %d spill stores still open", n)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "mozart-spill-*"))
	if err != nil {
		fatalf("spill: %v", err)
	}
	if len(leftovers) != 0 {
		fatalf("spill: %d orphaned spill stores in %s", len(leftovers), dir)
	}
	fmt.Println("spill: completed out of core within budget, checksum exact, zero spill residue")
}

// spillTally counts spilled frames and payload bytes off the event stream.
type spillTally struct {
	mu     sync.Mutex
	frames int64
	bytes  int64
}

func (s *spillTally) Emit(e obs.Event) {
	if e.Kind != obs.EvSpill || e.Detail != "append" {
		return
	}
	s.mu.Lock()
	s.frames++
	s.bytes += e.Bytes
	s.mu.Unlock()
}

func (s *spillTally) totals() (int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frames, s.bytes
}
