package main

// bench: the BENCH trajectory emitter. Every commit can leave behind one
// machine-readable performance snapshot — all 15 workloads run through the
// real planner, their plan IR lowered into the memsim machine model, and the
// modeled runtime plus simulated hardware counters recorded at 1/4/8/16
// threads. Snapshots are written as BENCH_<git-sha>.json; before writing,
// the newest existing snapshot in -benchdir is loaded and compared, and any
// per-workload modeled slowdown beyond 5% fails the run. The result is a
// regression trip-wire and a performance trajectory across the repo's
// history, driven by actual planner output rather than hand models.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mozart/internal/memsim"
	"mozart/internal/plan"
	"mozart/internal/planlower"
	"mozart/internal/workloads"
)

var benchDir = flag.String("benchdir", ".", "directory for BENCH_<sha>.json snapshots (-experiment bench)")

// benchThreads is the snapshot's thread sweep (a subset of threadSweep: the
// paper's single-core, mid, and 16-core points).
var benchThreads = []int{1, 4, 8, 16}

// benchTolerance is the relative modeled-runtime slowdown vs. the previous
// snapshot that fails the run.
const benchTolerance = 0.05

const benchSchema = "mozart-bench/v1"

// benchPoint is one (workload, thread count) measurement: modeled runtime
// and the simulated hardware counters summed over every evaluation's stages.
type benchPoint struct {
	Threads     int     `json:"threads"`
	Seconds     float64 `json:"seconds"`
	L1Hits      int64   `json:"l1_hits"`
	L1Misses    int64   `json:"l1_misses"`
	L2Hits      int64   `json:"l2_hits"`
	L2Misses    int64   `json:"l2_misses"`
	LLCHits     int64   `json:"llc_hits"`
	LLCMisses   int64   `json:"llc_misses"`
	DRAMBytes   int64   `json:"dram_bytes"`
	LLCMissRate float64 `json:"llc_miss_rate"`
}

type benchWorkload struct {
	Name          string       `json:"name"`
	Library       string       `json:"library"`
	Scale         int          `json:"scale"`
	Evaluations   int          `json:"evaluations"`
	DistinctPlans int          `json:"distinct_plans"`
	// BatchSource records where the captured plans' batch policy came from
	// (plan.BatchProvenance): "static" for the 5.2 heuristic, "sweeping" or
	// "calibrated" when a tuner was attached. Bench runs untuned sessions,
	// so current snapshots say "static"; readers tolerate it missing in
	// snapshots written before the field existed.
	BatchSource string       `json:"batch_source,omitempty"`
	Points      []benchPoint `json:"points"`
}

type benchReport struct {
	Schema      string          `json:"schema"`
	GitSHA      string          `json:"git_sha"`
	CreatedUnix int64           `json:"created_unix"`
	Machine     string          `json:"machine"`
	Threads     []int           `json:"threads"`
	Workloads   []benchWorkload `json:"workloads"`
}

// bench runs the experiment: capture, simulate, compare, emit.
func bench(int) {
	fmt.Println("=== Bench: modeled performance snapshot from real planner output ===")
	machine := memsim.DefaultMachine()
	report := benchReport{
		Schema:      benchSchema,
		GitSHA:      gitSHA(),
		CreatedUnix: time.Now().Unix(),
		Machine:     fmt.Sprintf("memsim default (L2 %dKB, LLC %dMB)", machine.L2.SizeBytes>>10, machine.LLC.SizeBytes>>20),
		Threads:     append([]int(nil), benchThreads...),
	}

	w := tw()
	fmt.Fprintln(w, "workload\tevals\tplans\t1t\t4t\t8t\t16t\tLLC miss @16t")
	for _, spec := range workloads.All() {
		bw, err := benchWorkloadRun(spec, machine)
		if err != nil {
			fatalf("bench: %s: %v", spec.Name, err)
		}
		report.Workloads = append(report.Workloads, bw)
		fmt.Fprintf(w, "%s\t%d\t%d", bw.Name, bw.Evaluations, bw.DistinctPlans)
		for _, p := range bw.Points {
			fmt.Fprintf(w, "\t%.2fms", p.Seconds*1e3)
		}
		fmt.Fprintf(w, "\t%.1f%%\n", 100*bw.Points[len(bw.Points)-1].LLCMissRate)
	}
	w.Flush()

	if err := validateBench(report); err != nil {
		fatalf("bench: produced an invalid snapshot: %v", err)
	}

	// Load the previous snapshot BEFORE writing the new one, so a re-run
	// with the same sha never compares a file against itself.
	prev, prevPath, err := newestBench(*benchDir, report.GitSHA)
	if err != nil {
		fatalf("bench: loading previous snapshot: %v", err)
	}

	out := filepath.Join(*benchDir, "BENCH_"+report.GitSHA+".json")
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("bench: encoding snapshot: %v", err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		fatalf("bench: writing snapshot: %v", err)
	}
	fmt.Printf("bench: wrote %s (%d workloads x %d thread counts)\n",
		out, len(report.Workloads), len(report.Threads))

	if prev == nil {
		fmt.Println("bench: no previous snapshot to compare against")
		return
	}
	regressions := compareBench(*prev, report, benchTolerance)
	if len(regressions) > 0 {
		fmt.Printf("bench: %d modeled regression(s) vs %s:\n", len(regressions), prevPath)
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		fatalf("bench: modeled runtime regressed more than %.0f%%", 100*benchTolerance)
	}
	fmt.Printf("bench: no modeled regressions beyond %.0f%% vs %s\n", 100*benchTolerance, prevPath)
}

// benchWorkloadRun captures the workload's real plans once (plan shape does
// not depend on the worker count) and simulates each distinct plan at every
// thread count, weighting by how many evaluations produced it. The scale is
// DefaultScale/16, matching -experiment explain, so the plans here are the
// same ones the explain golden pins.
func benchWorkloadRun(spec workloads.Spec, machine memsim.Machine) (benchWorkload, error) {
	var plans []*plan.Plan
	cfg := workloads.Config{
		Scale:   spec.DefaultScale / 16,
		Threads: 4,
		OnPlan:  func(p *plan.Plan) { plans = append(plans, p) },
	}
	if _, err := spec.Run(workloads.Mozart, cfg); err != nil {
		return benchWorkload{}, err
	}
	if len(plans) == 0 {
		return benchWorkload{}, fmt.Errorf("no plan captured")
	}
	type weighted struct {
		p     *plan.Plan
		count int64
	}
	byRender := map[string]int{}
	var distinct []weighted
	for _, p := range plans {
		r := plan.Render(p)
		if i, ok := byRender[r]; ok {
			distinct[i].count++
			continue
		}
		byRender[r] = len(distinct)
		distinct = append(distinct, weighted{p: p, count: 1})
	}

	bw := benchWorkload{
		Name:          spec.Name,
		Library:       spec.Library,
		Scale:         cfg.Scale,
		Evaluations:   len(plans),
		DistinctPlans: len(distinct),
		BatchSource:   plans[0].Provenance.String(),
	}
	lower := workloads.Lowering(spec)
	for _, threads := range benchThreads {
		pt := benchPoint{Threads: threads}
		for _, d := range distinct {
			per := planlower.SimulateCounters(d.p, lower, machine, threads)
			for _, c := range per {
				pt.Seconds += float64(d.count) * c.Seconds
				pt.L1Hits += d.count * c.L1Hits
				pt.L1Misses += d.count * c.L1Misses
				pt.L2Hits += d.count * c.L2Hits
				pt.L2Misses += d.count * c.L2Misses
				pt.LLCHits += d.count * c.LLCHits
				pt.LLCMisses += d.count * c.LLCMisses
				pt.DRAMBytes += d.count * c.DRAMBytes
			}
		}
		if acc := pt.LLCHits + pt.LLCMisses; acc > 0 {
			pt.LLCMissRate = float64(pt.LLCMisses) / float64(acc)
		}
		bw.Points = append(bw.Points, pt)
	}
	return bw, nil
}

// validateBench is the schema self-check applied to every snapshot this
// binary writes or reads: right schema tag, all workloads present with the
// full thread sweep, and positive modeled runtimes.
func validateBench(r benchReport) error {
	if r.Schema != benchSchema {
		return fmt.Errorf("schema %q, want %q", r.Schema, benchSchema)
	}
	if r.GitSHA == "" {
		return fmt.Errorf("empty git_sha")
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("no workloads")
	}
	for _, bw := range r.Workloads {
		if len(bw.Points) != len(r.Threads) {
			return fmt.Errorf("%s: %d points, want %d", bw.Name, len(bw.Points), len(r.Threads))
		}
		for i, p := range bw.Points {
			if p.Threads != r.Threads[i] {
				return fmt.Errorf("%s: point %d has threads=%d, want %d", bw.Name, i, p.Threads, r.Threads[i])
			}
			if p.Seconds <= 0 {
				return fmt.Errorf("%s @%d threads: non-positive modeled runtime %g", bw.Name, p.Threads, p.Seconds)
			}
		}
		// batch_source, when present, must be a known provenance; absent is
		// fine (snapshots predating the field).
		switch bw.BatchSource {
		case "", "static", "sweeping", "calibrated":
		default:
			return fmt.Errorf("%s: unknown batch_source %q", bw.Name, bw.BatchSource)
		}
	}
	return nil
}

// compareBench diffs two snapshots and returns one line per modeled
// regression: a (workload, threads) point whose runtime grew by more than
// tol relative to prev. Workloads or thread counts present in only one
// snapshot are ignored — adding a workload is not a regression.
func compareBench(prev, cur benchReport, tol float64) []string {
	prevPts := map[string]float64{}
	for _, bw := range prev.Workloads {
		for _, p := range bw.Points {
			prevPts[fmt.Sprintf("%s@%d", bw.Name, p.Threads)] = p.Seconds
		}
	}
	var out []string
	for _, bw := range cur.Workloads {
		for _, p := range bw.Points {
			key := fmt.Sprintf("%s@%d", bw.Name, p.Threads)
			was, ok := prevPts[key]
			if !ok || was <= 0 {
				continue
			}
			if p.Seconds > was*(1+tol) {
				out = append(out, fmt.Sprintf("%s %d threads: %.3fms -> %.3fms (+%.1f%%)",
					bw.Name, p.Threads, was*1e3, p.Seconds*1e3, 100*(p.Seconds/was-1)))
			}
		}
	}
	sort.Strings(out)
	return out
}

// newestBench finds the most recent BENCH_*.json in dir (by modification
// time, name as tie-break), skipping the current sha's own file, and decodes
// it. Returns (nil, "", nil) when there is nothing to compare against; a
// snapshot that exists but fails to decode or validate is an error — a
// corrupt baseline should fail loudly, not silently disable the trip-wire.
func newestBench(dir, curSHA string) (*benchReport, string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, "", err
	}
	type cand struct {
		path string
		mod  time.Time
	}
	var cands []cand
	for _, p := range paths {
		if filepath.Base(p) == "BENCH_"+curSHA+".json" {
			continue
		}
		fi, err := os.Stat(p)
		if err != nil {
			return nil, "", err
		}
		cands = append(cands, cand{p, fi.ModTime()})
	}
	if len(cands) == 0 {
		return nil, "", nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].mod.Equal(cands[j].mod) {
			return cands[i].mod.After(cands[j].mod)
		}
		return cands[i].path > cands[j].path
	})
	best := cands[0]
	buf, err := os.ReadFile(best.path)
	if err != nil {
		return nil, "", err
	}
	var r benchReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, "", fmt.Errorf("%s: %v", best.path, err)
	}
	if err := validateBench(r); err != nil {
		return nil, "", fmt.Errorf("%s: %v", best.path, err)
	}
	return &r, best.path, nil
}

// gitSHA names the snapshot: SABENCH_GIT_SHA if set (CI), the repo HEAD if
// git is available, "dev" otherwise.
func gitSHA() string {
	if sha := os.Getenv("SABENCH_GIT_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	if sha := strings.TrimSpace(string(out)); sha != "" {
		return sha
	}
	return "dev"
}
