package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mozart/internal/serve"
)

// serveload measures mozartd's overload behavior: an in-process server with
// two tenants — a well-provisioned "gold" and a deliberately small
// "bronze" — takes concurrent evaluation traffic over real HTTP, and the
// table shows how admission control translates pressure into outcomes:
// served 200s, shed 429s (budget or in-flight cap), and deadline 504s,
// with per-tenant budget high-water marks and breaker trips. The run ends
// with a graceful drain and verifies every carved byte came back.
func serveload(scaleDiv int) {
	fmt.Println("=== mozartd under load: per-tenant admission, shedding, and drain (measured) ===")
	srv, err := serve.New(serve.Config{
		GlobalBudgetBytes: 256 << 20,
		MaxInFlight:       16,
		DefaultTimeout:    10 * time.Second,
		MaxTimeout:        10 * time.Second,
		DrainTimeout:      5 * time.Second,
		// Server-default SLO: 500ms latency objective at three nines. gold's
		// 1ms-deadline shots land as 504s — SLO-bad — so its burn rates go
		// non-zero; bronze's tight 5ms objective shows slow 200s spending
		// error budget even though they succeeded.
		SLO: serve.SLOConfig{LatencyObjective: 500 * time.Millisecond, Availability: 0.999},
		Tenants: []serve.TenantConfig{
			{Name: "gold", BudgetBytes: 128 << 20, MaxInFlight: 4},
			// bronze's carve is one modeled mid-size request: big requests
			// can never fit and shed deterministically.
			{Name: "bronze", BudgetBytes: 512 << 10, MaxInFlight: 2,
				SLO: &serve.SLOConfig{LatencyObjective: 5 * time.Millisecond, Availability: 0.999}},
		},
	})
	if err != nil {
		fmt.Printf("serve.New: %v\n", err)
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("listen: %v\n", err)
		return
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	post := func(tenant, body string) int {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/eval", strings.NewReader(body))
		if err != nil {
			return 0
		}
		req.Header.Set("X-Mozart-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	smallScale := (1 << 14) / scaleDiv // ~256 KiB modeled: fits bronze
	bigScale := 1 << 16                // ~1 MiB modeled: over bronze's whole carve
	type shot struct{ tenant, body string }
	var shots []shot
	for i := 0; i < 12; i++ {
		shots = append(shots, shot{"gold", fmt.Sprintf(`{"workload":"blackscholes-numpy","scale":%d,"threads":2,"session":"load"}`, bigScale/scaleDiv)})
		shots = append(shots, shot{"bronze", fmt.Sprintf(`{"workload":"haversine-numpy","scale":%d,"threads":2,"session":"load"}`, smallScale)})
		if i%3 == 0 {
			// Over-budget bronze requests: deterministic 429s.
			shots = append(shots, shot{"bronze", fmt.Sprintf(`{"workload":"haversine-numpy","scale":%d}`, bigScale)})
			// A 1ms deadline on a real pipeline: deadline propagation in
			// action (blackscholes streams, so cancellation lands at the
			// next batch boundary instead of stalling in one huge call).
			shots = append(shots, shot{"gold", fmt.Sprintf(`{"workload":"blackscholes-numpy","scale":%d,"timeout_ms":1}`, bigScale/scaleDiv)})
		}
	}

	var transport atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8) // 8 concurrent clients
	for _, sh := range shots {
		sh := sh
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if post(sh.tenant, sh.body) == 0 {
				transport.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	w := tw()
	fmt.Fprintln(w, "tenant\tbudget\tserved\tshed (429)\ttimed out (504)\tfailed\thigh water\tbreaker trips\tSLO good/bad\tburn 5m\tburn 1h\tworst trace")
	for _, name := range srv.TenantNames() {
		st := srv.Tenant(name).Status()
		worst := st.SLOWorstTrace
		if len(worst) > 8 {
			worst = worst[:8] + "…"
		}
		if worst == "" {
			worst = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%s\t%d\t%d/%d\t%.1f\t%.1f\t%s\n", name, mib(st.BudgetBytes),
			st.Served, st.Shed, st.TimedOut, st.Failed, mib(st.HighWaterBytes), st.BreakerTrips,
			st.SLOGood, st.SLOBad, st.SLOBurnRate5m, st.SLOBurnRate1h, worst)
	}
	w.Flush()
	fmt.Printf("%d requests over %d concurrent clients in %.2fs (%d transport errors)\n",
		len(shots), cap(sem), elapsed.Seconds(), transport.Load())

	drainStart := time.Now()
	if err := srv.Drain(); err != nil {
		fmt.Printf("drain: UNCLEAN: %v\n", err)
		return
	}
	fmt.Printf("drain: clean in %.0fms — in-flight 0, shared governor in-use %d bytes\n",
		time.Since(drainStart).Seconds()*1e3, srv.GlobalGovernor().InUse())
	fmt.Println("(bronze's over-budget requests shed immediately instead of queuing; gold's")
	fmt.Println(" 1ms-deadline requests are cancelled mid-evaluation and surface as 504.")
	fmt.Println(" SLO good/bad classifies finished requests against each tenant's latency")
	fmt.Println(" objective — sheds are uncounted — and burn = bad fraction / error budget;")
	fmt.Println(" the worst trace keys /debug/mozart/spans/<id> for the slowest request)")
}

func mib(b int64) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dMiB", b>>20)
	}
	return fmt.Sprintf("%dKiB", b>>10)
}
