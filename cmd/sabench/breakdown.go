package main

import (
	"mozart/internal/core"
	"mozart/internal/workloads"
)

// runWithBreakdown executes a workload's Mozart variant while observing the
// sessions it creates, and returns the summed phase statistics (Fig. 5).
func runWithBreakdown(spec workloads.Spec, cfg workloads.Config) (core.StatsSnapshot, error) {
	var sessions []*core.Session
	cfg.OnSession = func(s *core.Session) { sessions = append(sessions, s) }
	if _, err := spec.Run(workloads.Mozart, cfg); err != nil {
		return core.StatsSnapshot{}, err
	}
	var total core.StatsSnapshot
	for _, s := range sessions {
		st := s.Stats()
		total.ClientNS += st.ClientNS
		total.UnprotectNS += st.UnprotectNS
		total.PlannerNS += st.PlannerNS
		total.SplitNS += st.SplitNS
		total.TaskNS += st.TaskNS
		total.MergeNS += st.MergeNS
		total.Stages += st.Stages
		total.Batches += st.Batches
		total.Calls += st.Calls
	}
	return total, nil
}
