package main

import (
	"context"
	"fmt"
	"time"

	"mozart/internal/annotations/vmathsa"
	"mozart/internal/core"
	"mozart/internal/faultinject"
	"mozart/internal/vmath"
)

// faultCalls builds injector-wrapped annotated versions of the Listing-1
// pipeline's three functions (log1p, add, div). Each function and the
// shared array splitter run through inj under the function's MKL-style
// site name, so faults can be armed per call site.
func faultCalls(inj *faultinject.Injector) map[string]struct {
	fn core.Func
	sa *core.Annotation
} {
	arrOf := func(site string) core.TypeExpr {
		return core.Concrete("ArraySplit", inj.WrapSplitter(site, vmathsa.ArraySplitter{}), func(args []any) (core.SplitType, error) {
			return core.NewSplitType("ArraySplit", int64(args[0].(int))), nil
		})
	}
	unary := func(site string, f func(int, []float64, []float64)) (core.Func, *core.Annotation) {
		fn := inj.WrapFunc(site, func(args []any) (any, error) {
			f(args[0].(int), args[1].([]float64), args[2].([]float64))
			return nil, nil
		})
		arr := arrOf(site)
		return fn, &core.Annotation{FuncName: site, Params: []core.Param{
			{Name: "size", Type: vmathsa.SizeSplit(0)},
			{Name: "a", Type: arr},
			{Name: "out", Mut: true, Type: arr},
		}}
	}
	binary := func(site string, f func(int, []float64, []float64, []float64)) (core.Func, *core.Annotation) {
		fn := inj.WrapFunc(site, func(args []any) (any, error) {
			f(args[0].(int), args[1].([]float64), args[2].([]float64), args[3].([]float64))
			return nil, nil
		})
		arr := arrOf(site)
		return fn, &core.Annotation{FuncName: site, Params: []core.Param{
			{Name: "size", Type: vmathsa.SizeSplit(0)},
			{Name: "a", Type: arr},
			{Name: "b", Type: arr},
			{Name: "out", Mut: true, Type: arr},
		}}
	}
	out := map[string]struct {
		fn core.Func
		sa *core.Annotation
	}{}
	log1pFn, log1pSA := unary("vdLog1p", vmath.Log1p)
	addFn, addSA := binary("vdAdd", vmath.Add)
	divFn, divSA := binary("vdDiv", vmath.Div)
	out["log1p"] = struct {
		fn core.Func
		sa *core.Annotation
	}{log1pFn, log1pSA}
	out["add"] = struct {
		fn core.Func
		sa *core.Annotation
	}{addFn, addSA}
	out["div"] = struct {
		fn core.Func
		sa *core.Annotation
	}{divFn, divSA}
	return out
}

// faults measures the cost of the fault-tolerance machinery on the Listing-1
// vector pipeline: a clean annotated run vs runs where an injected
// annotation fault (a panic in one batch, or a splitter error) forces the
// runtime to degrade to whole-call execution or quarantine the annotation.
func faults(scaleDiv int) {
	fmt.Println("=== Fault-injection ablation: fallback overhead on the Listing-1 pipeline (measured) ===")
	n := (1 << 22) / scaleDiv

	mkInputs := func() (d1, tmp, vol []float64) {
		d1 = make([]float64, n)
		tmp = make([]float64, n)
		vol = make([]float64, n)
		for i := 0; i < n; i++ {
			d1[i] = float64(i%100)/100 + 0.1
			tmp[i] = float64(i%37)/37 + 0.1
			vol[i] = float64(i%53)/53 + 0.5
		}
		return
	}

	// Library reference (whole calls, no Mozart).
	ref, tmp, vol := mkInputs()
	t0 := time.Now()
	vmath.Log1p(n, ref, ref)
	vmath.Add(n, ref, tmp, ref)
	vmath.Div(n, ref, vol, ref)
	libTime := time.Since(t0).Seconds()

	match := func(d1 []float64) string {
		for i := range d1 {
			if d1[i] != ref[i] {
				return fmt.Sprintf("MISMATCH at %d", i)
			}
		}
		return "matches library"
	}

	runPipeline := func(inj *faultinject.Injector, opts core.Options, rounds int) (float64, core.StatsSnapshot, []float64) {
		calls := faultCalls(inj)
		d1, tmp, vol := mkInputs()
		var s *core.Session
		start := time.Now()
		for r := 0; r < rounds; r++ {
			if r == 0 {
				s = core.NewSession(opts)
			}
			s.Call(calls["log1p"].fn, calls["log1p"].sa, n, d1, d1)
			s.Call(calls["add"].fn, calls["add"].sa, n, d1, tmp, d1)
			s.Call(calls["div"].fn, calls["div"].sa, n, d1, vol, d1)
			if err := s.EvaluateContext(context.Background()); err != nil {
				fmt.Printf("    evaluation error: %v\n", err)
				return 0, s.Stats(), d1
			}
		}
		return time.Since(start).Seconds(), s.Stats(), d1
	}

	type row struct {
		name    string
		seconds float64
		stats   core.StatsSnapshot
		check   string
	}
	var rows []row

	// Clean annotated run.
	sec, st, d1 := runPipeline(faultinject.New(0), core.Options{}, 1)
	clean := sec
	rows = append(rows, row{"mozart clean", sec, st, match(d1)})

	// Panic in one batch of vdLog1p; whole-call fallback re-executes the
	// stage unsplit after restoring the in-place-mutated inputs.
	inj := faultinject.New(0)
	inj.PanicOnNthCall("vdLog1p", 2)
	sec, st, d1 = runPipeline(inj, core.Options{FallbackPolicy: core.FallbackWholeCall}, 1)
	rows = append(rows, row{"panic -> whole-call fallback", sec, st, match(d1)})

	// Splitter error with quarantine: round 1 falls back and quarantines
	// vdLog1p; round 2 plans it whole without consulting the splitter.
	inj = faultinject.New(0)
	inj.ErrorOnNthSplit("vdLog1p", 1)
	sec, st, d1 = runPipeline(inj, core.Options{FallbackPolicy: core.FallbackQuarantine}, 2)
	// Round 2 recomputes over the round-1 output, so skip the value check.
	rows = append(rows, row{"split error -> quarantine (2 rounds)", sec, st, "n/a (iterated)"})

	// Transient library outage on one vdAdd batch. Without a retry policy
	// the evaluation aborts (the seed's behavior); with MaxAttempts 3 the
	// runtime replays just that batch and the run completes exactly.
	inj = faultinject.New(0)
	inj.TransientErrorOnCalls("vdAdd", 2, 2)
	sec, st, d1 = runPipeline(inj, core.Options{
		RetryPolicy: core.RetryPolicy{MaxAttempts: 3},
	}, 1)
	rows = append(rows, row{"transient call error -> batch retry", sec, st, match(d1)})

	// The same transient splitter outage, but with a breaker that cools
	// down: round 1 trips it, round 2 runs whole (open), round 3's probe
	// splits again and closes it — quarantine that heals.
	inj = faultinject.New(0)
	inj.TransientErrorOnSplits("vdLog1p", 1, 1)
	sec, st, d1 = runPipeline(inj, core.Options{
		FallbackPolicy: core.FallbackQuarantine,
		Breaker:        core.BreakerPolicy{Threshold: 1, Cooldown: time.Millisecond},
	}, 3)
	rows = append(rows, row{"split outage -> breaker heals (3 rounds)", sec, st, "n/a (iterated)"})

	// Memory-budget admission: the governor caps the modeled working set at
	// a quarter of the arrays, so stages shrink their batches to fit.
	sec, st, d1 = runPipeline(faultinject.New(0), core.Options{
		MemoryBudgetBytes: int64(n) * 8,
	}, 1)
	rows = append(rows, row{"admission (budget = n*8 bytes)", sec, st, match(d1)})

	w := tw()
	fmt.Fprintln(w, "variant\ttime\tvs clean\tpanics\tfallbacks\tquarantined\tretried\ttrips\tadm wait\tresult")
	fmt.Fprintf(w, "library (whole calls)\t%.3fs\t%.2fx\t-\t-\t-\t-\t-\t-\treference\n", libTime, libTime/clean)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3fs\t%.2fx\t%d\t%d\t%d\t%d\t%d\t%v\t%s\n", r.name, r.seconds, r.seconds/clean,
			r.stats.RecoveredPanics, r.stats.FallbackStages, r.stats.QuarantinedCalls,
			r.stats.RetriedBatches, r.stats.BreakerTrips,
			time.Duration(r.stats.AdmissionWaitNS), r.check)
	}
	w.Flush()
	fmt.Println("(fallback pays for the wasted split attempt plus one unsplit re-execution;")
	fmt.Println(" quarantine amortizes that to whole-call speed on later evaluations; batch")
	fmt.Println(" retry and breaker recovery keep split-speed execution after transient faults)")
}
