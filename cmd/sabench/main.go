// Command sabench regenerates the tables and figures of the split
// annotations paper (SOSP 2019) over this repository's implementation.
//
// Usage:
//
//	sabench -experiment all|fig1|fig4|fig5|fig6|fig7|table2|table3|table4|wall|faults|trace|explain|bench|serveload|spill|autotune
//
// Multicore figures (1-16 threads) are produced on the memsim machine
// model, which executes the workloads' actual execution plans (per-call
// full scans for base libraries, cache-sized pipelined batches for Mozart,
// fused passes for the compiler comparator) through a cache simulator and
// a roofline cost model; see DESIGN.md for the substitution rationale.
// Wall-clock experiments (fig5, fig7a, `wall`) run the real libraries and
// the real Mozart runtime on the host.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"mozart/internal/memsim"
	"mozart/internal/vmath"
	"mozart/internal/workloads"
)

var threadSweep = []int{1, 2, 4, 8, 16}

func main() {
	exp := flag.String("experiment", "all", "fig1|fig4|fig5|fig6|fig7|table2|table3|table4|wall|faults|trace|explain|bench|serveload|spill|autotune|all")
	scaleDiv := flag.Int("scalediv", 1, "divide default workload scales by this factor (wall-clock experiments)")
	flag.Parse()

	run := func(name string, f func(int)) {
		if *exp == name || *exp == "all" {
			f(*scaleDiv)
			fmt.Println()
		}
	}
	run("fig1", fig1)
	run("fig4", fig4)
	run("fig5", fig5)
	run("fig6", fig6)
	run("fig7", fig7)
	run("table2", table2)
	run("table3", table3)
	run("table4", table4)
	run("wall", wall)
	run("faults", faults)
	run("trace", trace)
	run("explain", explain)
	run("bench", bench)
	run("serveload", serveload)
	run("spill", spillSmoke)
	run("autotune", autotune)
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// simTime runs a workload variant's plan on the machine model.
func simTime(spec workloads.Spec, v workloads.Variant, threads int) (float64, memsim.Result, bool) {
	if spec.Model == nil {
		return 0, memsim.Result{}, false
	}
	// Single-threaded base libraries ignore the thread count (Fig. 4).
	if v == workloads.Base && !spec.BaseParallel {
		threads = 1
	}
	m := spec.Model(v, workloads.Config{Scale: spec.DefaultScale, Threads: threads})
	if m == nil {
		return 0, memsim.Result{}, false
	}
	r := memsim.Run(memsim.DefaultMachine(), *m, threads)
	return r.Seconds, r, true
}

// fig1 is the motivating Black Scholes figure: MKL vs Weld vs Mozart.
func fig1(int) {
	fmt.Println("=== Figure 1: Black Scholes (MKL), modeled runtime, 1-16 threads ===")
	spec, _ := workloads.ByName("blackscholes-mkl")
	w := tw()
	fmt.Fprintln(w, "threads\tMKL\tWeld\tMozart\tMozart speedup over MKL")
	for _, t := range threadSweep {
		base, _, _ := simTime(spec, workloads.Base, t)
		weld, _, _ := simTime(spec, workloads.Weld, t)
		moz, _, _ := simTime(spec, workloads.Mozart, t)
		fmt.Fprintf(w, "%d\t%.2fms\t%.2fms\t%.2fms\t%.2fx\n", t, base*1e3, weld*1e3, moz*1e3, base/moz)
	}
	w.Flush()
}

// fig4 reproduces the 15-workload grid: modeled runtime per variant and
// thread count, plus the headline 16-thread speedup.
func fig4(int) {
	fmt.Println("=== Figure 4: end-to-end performance on 15 workloads (modeled) ===")
	for _, spec := range workloads.All() {
		fmt.Printf("--- %s (%s; base %s) ---\n", spec.Name, spec.Description, baseKind(spec))
		w := tw()
		fmt.Fprint(w, "threads")
		variants := modeledVariants(spec)
		for _, v := range variants {
			fmt.Fprintf(w, "\t%s", v)
		}
		fmt.Fprintln(w)
		for _, t := range threadSweep {
			fmt.Fprintf(w, "%d", t)
			for _, v := range variants {
				sec, _, ok := simTime(spec, v, t)
				if !ok {
					fmt.Fprint(w, "\t-")
					continue
				}
				fmt.Fprintf(w, "\t%.2fms", sec*1e3)
			}
			fmt.Fprintln(w)
		}
		w.Flush()
		b, _, _ := simTime(spec, workloads.Base, 16)
		m, _, _ := simTime(spec, workloads.Mozart, 16)
		if m > 0 {
			fmt.Printf("    speedup @16 threads: %.1fx\n", b/m)
		}
	}
}

func baseKind(spec workloads.Spec) string {
	if spec.BaseParallel {
		return "internally parallel"
	}
	return "single-threaded"
}

func modeledVariants(spec workloads.Spec) []workloads.Variant {
	var out []workloads.Variant
	for _, v := range spec.Variants {
		if v == workloads.MozartNoPipe {
			continue
		}
		out = append(out, v)
	}
	return out
}

// fig5 measures the real runtime breakdown of the Mozart runtime.
func fig5(scaleDiv int) {
	fmt.Println("=== Figure 5: runtime breakdown (measured on this host) ===")
	w := tw()
	fmt.Fprintln(w, "workload\tclient\tunprotect\tplanner\tsplit\ttask\tmerge")
	for _, name := range []string{"blackscholes-mkl", "nashville-imagemagick"} {
		spec, _ := workloads.ByName(name)
		cfg := workloads.Config{
			Scale:   spec.DefaultScale / scaleDiv,
			Threads: 1,
			// ~3.5ms/GB, the paper's measured mprotect cost.
			UnprotectNSPerByte: 0.0035,
		}
		bd, err := runWithBreakdown(spec, cfg)
		if err != nil {
			fmt.Fprintf(w, "%s\terror: %v\n", name, err)
			continue
		}
		tot := bd.ClientNS + bd.UnprotectNS + bd.PlannerNS + bd.SplitNS + bd.TaskNS + bd.MergeNS
		pct := func(x int64) string { return fmt.Sprintf("%.2f%%", 100*float64(x)/float64(tot)) }
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", name,
			pct(bd.ClientNS), pct(bd.UnprotectNS), pct(bd.PlannerNS),
			pct(bd.SplitNS), pct(bd.TaskNS), pct(bd.MergeNS))
	}
	w.Flush()
	fmt.Println("(task dominates; client+planner are <0.5% as in the paper)")
}

// fig6 sweeps the batch size and marks Mozart's heuristic pick.
func fig6(int) {
	fmt.Println("=== Figure 6: effect of batch size (modeled, 16 threads) ===")
	for _, name := range []string{"blackscholes-mkl", "nbody-mkl"} {
		spec, _ := workloads.ByName(name)
		fmt.Printf("--- %s ---\n", name)
		heuristic, _, _ := simTime(spec, workloads.Mozart, 16)
		w := tw()
		fmt.Fprintln(w, "batch elems\tmodeled time\tvs heuristic")
		best := heuristic
		for b := int64(512); b <= 2<<20; b *= 4 {
			m := spec.Model(workloads.Mozart, workloads.Config{Scale: spec.DefaultScale, Batch: b})
			r := memsim.Run(memsim.DefaultMachine(), *m, 16)
			if r.Seconds < best {
				best = r.Seconds
			}
			fmt.Fprintf(w, "%d\t%.2fms\t%.2fx\n", b, r.Seconds*1e3, r.Seconds/heuristic)
		}
		w.Flush()
		fmt.Printf("    heuristic batch: %.2fms (within %.0f%% of best %.2fms)\n",
			heuristic*1e3, 100*(heuristic-best)/best, best*1e3)
	}
}

// fig7 measures per-op intensity on the host (7a) and models per-op Mozart
// speedups over the un-annotated library (7b).
func fig7(int) {
	fmt.Println("=== Figure 7a: relative intensity of vector ops (measured) ===")
	type opCase struct {
		name string
		run  func(n int, a, b, out []float64)
	}
	ops := []opCase{
		{"add", func(n int, a, b, out []float64) { vmath.Add(n, a, b, out) }},
		{"mul", func(n int, a, b, out []float64) { vmath.Mul(n, a, b, out) }},
		{"div", func(n int, a, b, out []float64) { vmath.Div(n, a, b, out) }},
		{"sqrt", func(n int, a, b, out []float64) { vmath.Sqrt(n, a, out) }},
		{"erf", func(n int, a, b, out []float64) { vmath.Erf(n, a, out) }},
		{"exp", func(n int, a, b, out []float64) { vmath.Exp(n, a, out) }},
	}
	n := 1 << 14 // L2 resident
	a := make([]float64, n)
	b := make([]float64, n)
	out := make([]float64, n)
	for i := range a {
		a[i] = float64(i%100)/100 + 0.1
		b[i] = float64(i%37)/37 + 0.1
	}
	times := make([]float64, len(ops))
	for i, op := range ops {
		op.run(n, a, b, out) // warm
		start := time.Now()
		const reps = 200
		for r := 0; r < reps; r++ {
			op.run(n, a, b, out)
		}
		times[i] = time.Since(start).Seconds() / reps
	}
	w := tw()
	fmt.Fprintln(w, "op\tns/elem\trelative intensity (vs exp)")
	for i, op := range ops {
		fmt.Fprintf(w, "%s\t%.2f\t%.3f\n", op.name, times[i]*1e9/float64(n), times[i]/times[len(ops)-1])
	}
	w.Flush()

	fmt.Println("\n=== Figure 7b: modeled Mozart speedup per op, 10 calls over a large array ===")
	cycles := map[string]float64{"add": 0.7, "mul": 0.8, "div": 2.5, "sqrt": 3.5, "erf": 6.0, "exp": 8.0}
	w = tw()
	fmt.Fprintln(w, "op\t1\t2\t4\t8\t16 threads")
	names := []string{"add", "mul", "div", "sqrt", "erf", "exp"}
	for _, name := range names {
		fmt.Fprintf(w, "%s", name)
		for _, t := range threadSweep {
			base := opRepeatModel(cycles[name], 0)
			moz := opRepeatModel(cycles[name], 64<<10) // the C*L2 heuristic for 2 arrays
			rb := memsim.Run(memsim.DefaultMachine(), base, t)
			rm := memsim.Run(memsim.DefaultMachine(), moz, t)
			fmt.Fprintf(w, "\t%.2fx", rb.Seconds/rm.Seconds)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("(low-intensity ops gain the most, and gains grow with threads)")
}

// opRepeatModel is Figure 7b's workload: one vector op called 10 times over
// an array much larger than the LLC.
func opRepeatModel(cyc float64, batch int64) memsim.Workload {
	ops := make([]memsim.Op, 10)
	for i := range ops {
		ops[i] = memsim.Op{Name: "op", CyclesPerElem: cyc, Reads: []int{0}, Writes: []int{1}}
	}
	return memsim.Workload{Name: "op-repeat", Elems: 32 << 20,
		Stages: []memsim.Stage{{Ops: ops, BatchElems: batch, ElemBytes: 8}}}
}

// table2 prints the workload inventory.
func table2(int) {
	fmt.Println("=== Table 2: workloads ===")
	w := tw()
	fmt.Fprintln(w, "workload\tlibrary\tops (ours)\tops (paper)\tdescription")
	paper := map[string]int{
		"blackscholes-numpy": 32, "blackscholes-mkl": 32,
		"haversine-numpy": 18, "haversine-mkl": 18,
		"nbody-numpy": 38, "nbody-mkl": 38,
		"shallowwater-numpy": 32, "shallowwater-mkl": 32,
		"datacleaning-pandas": 8, "crimeindex-pandas": 16,
		"birthanalysis-pandas": 12, "movielens-pandas": 18,
		"speechtag-spacy": 8, "nashville-imagemagick": 31, "gotham-imagemagick": 15,
	}
	for _, spec := range workloads.All() {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%s\n", spec.Name, spec.Library, spec.Operators, paper[spec.Name], spec.Description)
	}
	w.Flush()
}

// table4 is the pipelining ablation with modeled hardware counters.
func table4(int) {
	fmt.Println("=== Table 4: importance of pipelining (modeled, 16 threads) ===")
	w := tw()
	fmt.Fprintln(w, "workload\tvariant\tnorm. runtime\tLLC miss\tIPC")
	for _, name := range []string{"blackscholes-mkl", "haversine-mkl"} {
		spec, _ := workloads.ByName(name)
		base, rb, _ := simTime(spec, workloads.Base, 16)
		for _, v := range []workloads.Variant{workloads.Base, workloads.MozartNoPipe, workloads.Mozart} {
			sec, r, ok := simTime(spec, v, 16)
			if !ok {
				continue
			}
			label := map[workloads.Variant]string{
				workloads.Base: "MKL", workloads.MozartNoPipe: "Mozart(-pipe)", workloads.Mozart: "Mozart",
			}[v]
			_ = rb
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f%%\t%.3f\n", name, label, sec/base, 100*r.LLCMissRate, r.IPC)
		}
	}
	w.Flush()
	fmt.Println("(pipelining halves the LLC miss rate and lifts IPC; -pipe matches MKL)")
}

// wall runs real end-to-end measurements on this host.
func wall(scaleDiv int) {
	fmt.Printf("=== Wall clock on this host (GOMAXPROCS-bound; single-core container => 1-thread comparison) ===\n")
	w := tw()
	fmt.Fprintln(w, "workload\tbase\tmozart\tweld\tmozart vs base")
	for _, spec := range workloads.All() {
		cfg := workloads.Config{Scale: spec.DefaultScale / scaleDiv, Threads: 1}
		times := map[workloads.Variant]float64{}
		for _, v := range []workloads.Variant{workloads.Base, workloads.Mozart, workloads.Weld} {
			if !spec.HasVariant(v) {
				continue
			}
			start := time.Now()
			if _, err := spec.Run(v, cfg); err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", spec.Name, err)
				continue
			}
			times[v] = time.Since(start).Seconds()
		}
		weldStr := "-"
		if t, ok := times[workloads.Weld]; ok {
			weldStr = fmt.Sprintf("%.3fs", t)
		}
		fmt.Fprintf(w, "%s\t%.3fs\t%.3fs\t%s\t%.2fx\n", spec.Name,
			times[workloads.Base], times[workloads.Mozart], weldStr,
			times[workloads.Base]/times[workloads.Mozart])
	}
	w.Flush()
}
