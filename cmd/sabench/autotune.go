package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"mozart/internal/memsim"
	"mozart/internal/plan"
	"mozart/internal/tune"
	"mozart/internal/workloads"
)

// autotune closes the telemetry→plan loop offline: for every modeled
// workload it captures the real planner's plan, keys a tune.Tuner by the
// plan's structural signature, and drives the tuner's online golden-section
// sweep (the paper's Fig. 6 batch ablation) against the memsim machine
// model — PlanBatch proposes a batch, the model "runs" the evaluation, the
// measured throughput feeds back through Observe. The table compares the
// static §5.2 heuristic with the calibrated choice and the best fixed batch
// on the probe grid.
//
// Assertions (the tune-smoke gate): the converged choice must never fall
// below 0.95x the static heuristic's modeled throughput, and on a full run
// at least 3 workloads must calibrate to within one grid step of the best
// fixed batch. SABENCH_TUNE_WORKLOADS selects a comma-separated subset
// (used by `make tune-smoke`).
func autotune(int) {
	fmt.Println("=== Autotune: online batch calibration vs the static 5.2 heuristic (modeled, 16 threads) ===")

	only := map[string]bool{}
	if env := os.Getenv("SABENCH_TUNE_WORKLOADS"); env != "" {
		for _, n := range strings.Split(env, ",") {
			only[strings.TrimSpace(n)] = true
		}
	}

	const threads = 16
	// A tight trace cap keeps 16 workloads' sweeps fast; memsim shrinks the
	// cache hierarchy with the trace, preserving the batch:cache ratios that
	// shape the Fig. 6 curve.
	mach := memsim.DefaultMachine()
	mach.SimMaxElems = 1 << 16

	w := tw()
	fmt.Fprintln(w, "workload\tstatic (elems/s)\tcalibrated batch\tcalibrated (elems/s)\tbest fixed\tsteps off\tphase\tvs static")
	var rows, nearBest int
	for _, spec := range workloads.All() {
		if !spec.HasVariant(workloads.Mozart) || spec.Model == nil {
			continue
		}
		if len(only) > 0 && !only[spec.Name] {
			continue
		}

		// The real planner's plan, captured at a reduced scale, supplies the
		// structural signature the tuner keys on.
		var captured *plan.Plan
		cfg := workloads.Config{
			Scale:   spec.DefaultScale / 16,
			Threads: 4,
			OnPlan: func(p *plan.Plan) {
				if captured == nil {
					captured = p
				}
			},
		}
		if _, err := spec.Run(workloads.Mozart, cfg); err != nil {
			fatalf("autotune: %s: %v", spec.Name, err)
		}
		if captured == nil {
			fatalf("autotune: %s: no plan captured", spec.Name)
		}
		sig := plan.Signature(captured)

		elems := int64(spec.DefaultScale)
		memo := map[int64]float64{}
		thrFor := func(batch int64) float64 { // batch 0 = the static heuristic
			if thr, ok := memo[batch]; ok {
				return thr
			}
			m := spec.Model(workloads.Mozart, workloads.Config{Scale: spec.DefaultScale, Batch: batch})
			r := memsim.Run(mach, *m, threads)
			memo[batch] = float64(elems) / r.Seconds
			return memo[batch]
		}
		staticThr := thrFor(0)

		clock := time.Unix(0, 0)
		tu := tune.New(tune.Config{
			Clock: func() time.Time { clock = clock.Add(time.Second); return clock },
			Seed:  1,
		})
		var st tune.SignatureState
		for round := 0; round < 40; round++ {
			dec := tu.PlanBatch(plan.BatchRequest{Signature: sig, Workers: threads, Elems: elems})
			thr := thrFor(dec.BatchElems)
			tu.Observe(plan.Observation{
				Signature:  sig,
				BatchElems: dec.BatchElems,
				Workers:    threads,
				Elems:      elems,
				Elapsed:    time.Duration(float64(elems) / thr * float64(time.Second)),
			})
			st = tu.States()[0]
			if st.Phase == tune.PhaseCalibrated || st.Phase == tune.PhaseReverted {
				break
			}
		}

		// Best fixed batch over the tuner's own probe grid.
		bestBatch, bestThr, bestIdx := int64(0), 0.0, -1
		var grid []int64
		for b := int64(512); b <= 4<<20; b *= 2 {
			grid = append(grid, b)
			if b >= elems {
				break
			}
		}
		for i, b := range grid {
			if thr := thrFor(b); thr > bestThr {
				bestBatch, bestThr, bestIdx = b, thr, i
			}
		}

		chosenBatch, chosenThr := int64(0), staticThr // reverted: the heuristic stands
		steps := "-"
		if st.Phase == tune.PhaseCalibrated {
			chosenBatch, chosenThr = st.BestBatch, thrFor(st.BestBatch)
			for i, b := range grid {
				if b == chosenBatch {
					d := i - bestIdx
					if d < 0 {
						d = -d
					}
					steps = fmt.Sprintf("%d", d)
					if d <= 1 {
						nearBest++
					}
				}
			}
		} else if staticThr >= 0.95*bestThr {
			// The sweep found no >5% win: the heuristic already sits within
			// a step of the best fixed batch, which is the paper's Fig. 6
			// conclusion for most workloads.
			steps = "0*"
			nearBest++
		}

		batchLabel := "heuristic"
		if chosenBatch > 0 {
			batchLabel = fmt.Sprintf("%d", chosenBatch)
		}
		fmt.Fprintf(w, "%s\t%.3e\t%s\t%.3e\t%d\t%s\t%s\t%.2fx\n",
			spec.Name, staticThr, batchLabel, chosenThr, bestBatch, steps, st.Phase, chosenThr/staticThr)
		rows++

		if chosenThr < 0.95*staticThr {
			fatalf("autotune: %s: calibrated throughput %.3e fell below 0.95x static %.3e",
				spec.Name, chosenThr, staticThr)
		}
	}
	w.Flush()
	fmt.Printf("\n%d workloads, %d within one grid step of the best fixed batch (* = static heuristic already there)\n", rows, nearBest)
	if rows == 0 {
		fatalf("autotune: no workloads selected")
	}
	if want := 3; nearBest < want && rows >= want {
		fatalf("autotune: only %d of %d workloads converged to within one step of the best fixed batch (want >= %d)",
			nearBest, rows, want)
	}
}
