package main

// The observability smoke scenario behind -slo-smoke: boots a server on an
// ephemeral port and checks the tracing/SLO contract end to end — a
// traceparent-carrying request is echoed and leaves a full span tree, the
// latency histogram carries the trace id as an OpenMetrics exemplar, a
// tenant with an unmeetable latency objective shows non-zero multi-window
// burn rates, a deadline-exceeded request's trace id resolves to its
// flight recording, and the structured request log names the trace.
// `make slo-smoke` wires it into CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"mozart/internal/serve"
)

// smokeTraceparent is the fixed inbound trace context the scenario
// propagates; the trace id below must surface everywhere.
const (
	smokeTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	smokeTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
)

func runSLOSmoke(logf func(string, ...any)) error {
	// The structured request log lands in a buffer so the scenario can
	// assert the summary line carries the trace id.
	var logBuf bytes.Buffer
	srv, err := serve.New(serve.Config{
		GlobalBudgetBytes: 128 << 20,
		DefaultTimeout:    5 * time.Second,
		DrainTimeout:      3 * time.Second,
		Tenants: []serve.TenantConfig{
			{Name: "alpha", BudgetBytes: 64 << 20},
			// Every 200 misses a 1ns objective: all of strict's successes
			// are SLO-bad, so burn rates must go non-zero immediately.
			{Name: "strict", BudgetBytes: 32 << 20,
				SLO: &serve.SLOConfig{LatencyObjective: time.Nanosecond, Availability: 0.999}},
		},
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
		Logf:   logf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	base := "http://" + ln.Addr().String()
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	post := func(tenant, traceparent, body string) (*http.Response, []byte, error) {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/eval", bytes.NewReader([]byte(body)))
		if err != nil {
			return nil, nil, err
		}
		req.Header.Set("X-Mozart-Tenant", tenant)
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b, nil
	}
	get := func(path, accept string) (*http.Response, []byte, error) {
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			return nil, nil, err
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b, nil
	}

	// 1. A traced evaluation: the inbound trace id must come back in the
	// response header and body.
	resp, body, err := post("alpha", smokeTraceparent, `{"workload":"blackscholes-numpy","scale":16384,"timeout_ms":4000}`)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("traced eval: got %d (%s), want 200", resp.StatusCode, body)
	}
	if tp := resp.Header.Get("traceparent"); !strings.Contains(tp, smokeTraceID) {
		return fmt.Errorf("traced eval: response traceparent %q does not carry trace id %s", tp, smokeTraceID)
	}
	var er struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		return fmt.Errorf("traced eval: bad body %s: %w", body, err)
	}
	if er.TraceID != smokeTraceID {
		return fmt.Errorf("traced eval: body trace_id %q, want %s", er.TraceID, smokeTraceID)
	}
	logf("slo-smoke: traced eval echoed trace id %s", smokeTraceID)

	// 2. The span tree: admission → plan → stages → batches, all under the
	// request's trace id, in both renderings.
	resp, body, err = get("/debug/mozart/spans/"+smokeTraceID, "")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("span tree: got %d (%s), want 200", resp.StatusCode, body)
	}
	tree := string(body)
	for _, want := range []string{"trace " + smokeTraceID, "POST /v1/eval", "session", "plan", "stage 0", "batch ["} {
		if !strings.Contains(tree, want) {
			return fmt.Errorf("span tree missing %q:\n%s", want, tree)
		}
	}
	resp, body, err = get("/debug/mozart/spans/"+smokeTraceID+"?format=otlp", "")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("otlp export: got %d, want 200", resp.StatusCode)
	}
	var otlp struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID string `json:"traceId"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(body, &otlp); err != nil {
		return fmt.Errorf("otlp export: bad JSON: %w", err)
	}
	if len(otlp.ResourceSpans) == 0 || len(otlp.ResourceSpans[0].ScopeSpans) == 0 ||
		len(otlp.ResourceSpans[0].ScopeSpans[0].Spans) < 3 ||
		otlp.ResourceSpans[0].ScopeSpans[0].Spans[0].TraceID != smokeTraceID {
		return fmt.Errorf("otlp export: implausible span payload: %s", body)
	}
	logf("slo-smoke: span tree renders %d OTLP spans", len(otlp.ResourceSpans[0].ScopeSpans[0].Spans))

	// 3. OpenMetrics negotiation: the latency histogram's buckets carry the
	// trace id as an exemplar, and the exposition is properly terminated.
	resp, body, err = get("/metrics", "application/openmetrics-text")
	if err != nil {
		return err
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		return fmt.Errorf("openmetrics scrape: content type %q", ct)
	}
	om := string(body)
	if !strings.HasSuffix(om, "# EOF\n") {
		return fmt.Errorf("openmetrics scrape: missing # EOF terminator")
	}
	if !strings.Contains(om, `# {trace_id="`+smokeTraceID+`"}`) {
		return fmt.Errorf("openmetrics scrape: no exemplar carrying trace id %s", smokeTraceID)
	}
	logf("slo-smoke: OpenMetrics exemplar carries the trace id")

	// 4. Burn rates: traffic against strict's unmeetable objective must
	// push its multi-window burn rates above zero, on /v1/tenants and in
	// the mozart_slo_* families.
	for i := 0; i < 5; i++ {
		if resp, body, err = post("strict", "", `{"workload":"blackscholes-numpy","scale":4096,"timeout_ms":4000}`); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("strict eval %d: got %d (%s), want 200", i, resp.StatusCode, body)
		}
	}
	resp, body, err = get("/v1/tenants", "")
	if err != nil {
		return err
	}
	var statuses []serve.TenantStatus
	if err := json.Unmarshal(body, &statuses); err != nil {
		return fmt.Errorf("tenants: bad body %s: %w", body, err)
	}
	var strictOK bool
	for _, st := range statuses {
		if st.Name != "strict" {
			continue
		}
		if st.SLOBad < 5 || st.SLOBurnRate5m <= 0 || st.SLOBurnRate1h <= 0 {
			return fmt.Errorf("strict SLO row implausible: bad=%d burn5m=%g burn1h=%g",
				st.SLOBad, st.SLOBurnRate5m, st.SLOBurnRate1h)
		}
		if st.SLOWorstTrace == "" {
			return fmt.Errorf("strict SLO row missing worst trace")
		}
		strictOK = true
	}
	if !strictOK {
		return fmt.Errorf("no strict tenant in /v1/tenants: %s", body)
	}
	resp, body, err = get("/metrics", "")
	if err != nil {
		return err
	}
	plain := string(body)
	if !strings.Contains(plain, `mozart_slo_burn_rate{tenant="strict",window="5m"}`) ||
		!strings.Contains(plain, `mozart_slo_requests_total{outcome="bad",tenant="strict"} 5`) {
		return fmt.Errorf("plain scrape missing strict SLO families")
	}
	logf("slo-smoke: strict tenant burns budget on both windows")

	// 5. A deadline-exceeded request's trace id resolves to its flight
	// recording. The 1ms deadline can occasionally expire before the
	// session opens (no recording); retry with fresh trace ids until the
	// timeout lands mid-evaluation.
	var timedOutTrace string
	for i := 0; i < 10 && timedOutTrace == ""; i++ {
		resp, body, err = post("alpha", "", `{"workload":"blackscholes-numpy","scale":1048576,"timeout_ms":1}`)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusGatewayTimeout {
			continue
		}
		var ed struct {
			Error struct {
				TraceID string `json:"trace_id"`
				Flight  string `json:"flight"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &ed); err != nil {
			return fmt.Errorf("timeout body %s: %w", body, err)
		}
		if ed.Error.TraceID == "" || !strings.Contains(ed.Error.Flight, "?trace="+ed.Error.TraceID) {
			return fmt.Errorf("timeout body lacks trace-keyed flight ref: %s", body)
		}
		if resp, body, err = get(ed.Error.Flight, ""); err != nil {
			return err
		}
		if resp.StatusCode == http.StatusOK {
			var rec struct {
				TraceID string `json:"trace_id"`
				Err     string `json:"err"`
			}
			if err := json.Unmarshal(body, &rec); err != nil {
				return fmt.Errorf("flight lookup: bad body %s: %w", body, err)
			}
			if rec.TraceID != ed.Error.TraceID || rec.Err == "" {
				return fmt.Errorf("flight recording mismatch: trace %q err %q", rec.TraceID, rec.Err)
			}
			timedOutTrace = ed.Error.TraceID
		}
	}
	if timedOutTrace == "" {
		return fmt.Errorf("no deadline-exceeded request produced a trace-resolvable flight recording")
	}
	logf("slo-smoke: 504 trace %s resolved to its flight recording", timedOutTrace)

	// 6. The structured request log names the traced request.
	if !strings.Contains(logBuf.String(), `"trace_id":"`+smokeTraceID+`"`) {
		return fmt.Errorf("request log missing trace id %s:\n%s", smokeTraceID, logBuf.String())
	}
	logf("slo-smoke: structured log carries the trace id")

	// 7. Clean drain, as ever.
	if err := srv.Drain(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr
	return nil
}
