// Command mozartd serves Mozart evaluations over HTTP to multiple tenants
// with overload protection, deadlines, and graceful degradation.
//
// Usage:
//
//	mozartd -addr :8080 -budget 1024 -tenants alpha=512,beta=256
//
// declares two tenants whose memory budgets (in MiB) are carved out of a
// 1 GiB shared governor. Requests then evaluate named workloads:
//
//	curl -s -X POST localhost:8080/v1/eval -H 'X-Mozart-Tenant: alpha' \
//	  -d '{"workload":"blackscholes-numpy","scale":65536,"timeout_ms":500}'
//
// Overloaded tenants are shed with 429 + Retry-After (never queued) —
// unless the request opts in with "degrade": true, in which case an
// over-budget evaluation runs out of core instead: streamed in
// admission-sized windows with merge partials spilled under -spill-dir,
// reported back as "mode" and "spill_bytes" in the response. Expired
// deadlines surface as 504 with the partial work cancelled, and
// SIGTERM/SIGINT triggers a graceful drain: admission stops (readyz flips
// 503), in-flight evaluations get -drain to finish, stragglers are force-
// cancelled at batch boundaries, and the process exits 0 only if every
// budget byte was returned and every spill file reclaimed.
//
// The telemetry mux rides on the same listener: GET /metrics (plain
// Prometheus text, or OpenMetrics with exemplars under Accept:
// application/openmetrics-text), /debug/mozart/plans, /debug/mozart/trace,
// per-request span trees under /debug/mozart/spans/<trace-id>, and
// per-tenant flight recorders under /debug/mozart/flight/<tenant>.
//
// Every /v1/eval request is traced end to end: a W3C traceparent header is
// honoured (or one is minted), echoed back on the response, stamped into
// the JSON body, and every runtime event of the evaluation becomes a span
// in the request's tree. One structured log line summarizes each request
// (-log-json switches it to JSON); per-tenant SLOs (-slo-latency,
// -slo-availability) drive the mozart_slo_* burn-rate metric families.
//
// -smoke runs a self-contained boot → evaluate → shed → drain scenario on
// an ephemeral port (including a real SIGTERM round-trip) and exits
// non-zero on any violation; `make serve-smoke` wires it into CI.
// -slo-smoke does the same for the observability contract: traced
// requests, span trees, exemplars, burn rates, and trace→flight lookup;
// `make slo-smoke` wires it into CI.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mozart/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		budgetMiB  = flag.Int64("budget", 1024, "shared memory budget in MiB, carved across tenants")
		tenantSpec = flag.String("tenants", "", "comma-separated name=budgetMiB[:maxInFlight] tenant declarations (empty: one 'default' tenant owning the whole budget)")
		maxFlight  = flag.Int("max-in-flight", 32, "global concurrent-evaluation cap; excess requests shed with 429")
		timeout    = flag.Duration("timeout", 2*time.Second, "default per-request evaluation deadline")
		maxTimeout = flag.Duration("max-timeout", 10*time.Second, "clamp on client-supplied timeout_ms")
		drain      = flag.Duration("drain", 5*time.Second, "graceful-drain deadline after SIGTERM before force-cancel")
		maxWorkers = flag.Int("max-workers", 8, "clamp on per-request worker threads")
		spillDir   = flag.String("spill-dir", "", "directory for out-of-core spill stores (empty: the OS temp dir)")
		tuneOn     = flag.Bool("tune", false, "give each tenant a calibrating batch tuner: repeated plans sweep batch sizes online and pin the winner")
		smoke      = flag.Bool("smoke", false, "run the boot/shed/drain smoke scenario on an ephemeral port and exit")
		sloSmoke   = flag.Bool("slo-smoke", false, "run the tracing/SLO smoke scenario (span trees, exemplars, burn rates) on an ephemeral port and exit")
		logJSON    = flag.Bool("log-json", false, "emit the per-request summary log lines as JSON (default: logfmt-style text)")
		sloLatency = flag.Duration("slo-latency", 500*time.Millisecond, "per-tenant SLO latency objective: a 200 slower than this spends error budget")
		sloAvail   = flag.Float64("slo-availability", 0.999, "per-tenant SLO availability objective in (0,1); 1-it is the error budget")
	)
	flag.Parse()

	logf := log.New(os.Stderr, "mozartd: ", log.LstdFlags).Printf
	if *smoke {
		if err := runSmoke(logf); err != nil {
			logf("SMOKE FAIL: %v", err)
			os.Exit(1)
		}
		logf("SMOKE PASS")
		return
	}
	if *sloSmoke {
		if err := runSLOSmoke(logf); err != nil {
			logf("SLO-SMOKE FAIL: %v", err)
			os.Exit(1)
		}
		logf("SLO-SMOKE PASS")
		return
	}

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}

	tenants, err := parseTenants(*tenantSpec)
	if err != nil {
		logf("%v", err)
		os.Exit(2)
	}
	cfg := serve.Config{
		GlobalBudgetBytes: *budgetMiB << 20,
		MaxInFlight:       *maxFlight,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		DrainTimeout:      *drain,
		MaxWorkers:        *maxWorkers,
		SpillDir:          *spillDir,
		Tenants:           tenants,
		Tune:              *tuneOn,
		SLO:               serve.SLOConfig{LatencyObjective: *sloLatency, Availability: *sloAvail},
		Logger:            slog.New(handler),
		Logf:              logf,
	}
	srv, err := serve.New(cfg)
	if err != nil {
		logf("%v", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("%v", err)
		os.Exit(2)
	}
	if err := run(srv, ln, *drain, logf); err != nil {
		logf("%v", err)
		os.Exit(1)
	}
}

// run serves until SIGTERM/SIGINT, then walks the drain state machine and
// reports whether the server quiesced cleanly.
func run(srv *serve.Server, ln net.Listener, drainTimeout time.Duration, logf func(string, ...any)) error {
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logf("serving on http://%s (%d tenants: %s)", ln.Addr(), len(srv.TenantNames()), strings.Join(srv.TenantNames(), ", "))

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		return fmt.Errorf("mozartd: listener failed: %w", err)
	case <-sigCtx.Done():
	}
	logf("signal received; draining (deadline %v, %d in flight)", drainTimeout, srv.InFlight())
	drainErr := srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = hs.Shutdown(shutCtx)
	if drainErr != nil {
		return fmt.Errorf("mozartd: unclean drain: %w", drainErr)
	}
	logf("drained cleanly: in-flight 0, all tenant budgets returned")
	return nil
}

// parseTenants parses "name=budgetMiB[:maxInFlight],...".
func parseTenants(spec string) ([]serve.TenantConfig, error) {
	if spec == "" {
		return nil, nil // serve.Config defaults to one tenant owning the budget
	}
	var out []serve.TenantConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mozartd: bad tenant %q (want name=budgetMiB[:maxInFlight])", part)
		}
		budgetStr, flightStr, hasFlight := strings.Cut(rest, ":")
		budget, err := strconv.ParseInt(budgetStr, 10, 64)
		if err != nil || budget <= 0 {
			return nil, fmt.Errorf("mozartd: bad budget in tenant %q", part)
		}
		tc := serve.TenantConfig{Name: name, BudgetBytes: budget << 20}
		if hasFlight {
			n, err := strconv.Atoi(flightStr)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("mozartd: bad maxInFlight in tenant %q", part)
			}
			tc.MaxInFlight = n
		}
		out = append(out, tc)
	}
	return out, nil
}

// ---- smoke scenario --------------------------------------------------------

// runSmoke boots a two-tenant server on an ephemeral port and checks the
// robustness contract end to end: a normal evaluation succeeds, an
// over-budget tenant is shed with 429 + Retry-After, a real SIGTERM flips
// readyz and drains cleanly with every budget byte returned.
func runSmoke(logf func(string, ...any)) error {
	const (
		bigBudget  = 64 << 20
		tinyBudget = 4 << 10 // smaller than any modeled request: always sheds
	)
	srv, err := serve.New(serve.Config{
		GlobalBudgetBytes: 128 << 20,
		DefaultTimeout:    5 * time.Second,
		DrainTimeout:      3 * time.Second,
		Tenants: []serve.TenantConfig{
			{Name: "alpha", BudgetBytes: bigBudget},
			{Name: "tiny", BudgetBytes: tinyBudget},
		},
		Logf: logf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	base := "http://" + ln.Addr().String()
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	post := func(tenant string, body string) (*http.Response, []byte, error) {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/eval", bytes.NewReader([]byte(body)))
		if err != nil {
			return nil, nil, err
		}
		req.Header.Set("X-Mozart-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b, nil
	}

	// 1. Liveness and readiness.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: got %d, want 200", resp.StatusCode)
	}
	logf("smoke: readyz 200")

	// 2. A normal evaluation on the well-provisioned tenant succeeds.
	resp, body, err := post("alpha", `{"workload":"blackscholes-numpy","scale":16384,"timeout_ms":4000}`)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("alpha eval: got %d (%s), want 200", resp.StatusCode, body)
	}
	var er struct {
		Checksum float64 `json:"checksum"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		return fmt.Errorf("alpha eval: bad body %s: %w", body, err)
	}
	logf("smoke: alpha evaluated blackscholes-numpy, checksum %g", er.Checksum)

	// 3. The over-budget tenant is shed: 429, Retry-After, never queued.
	resp, body, err = post("tiny", `{"workload":"blackscholes-numpy","scale":65536}`)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("tiny eval: got %d (%s), want 429", resp.StatusCode, body)
	}
	if serve.RetryAfter(resp.Header) <= 0 {
		return fmt.Errorf("tiny eval: 429 without Retry-After")
	}
	logf("smoke: tiny shed with 429 Retry-After=%s", resp.Header.Get("Retry-After"))

	// 3b. The same tenant, opting into degradation: an evaluation whose
	// working set dwarfs the 4 KiB carve completes out of core instead of
	// shedding, and reports the pressure episode and spill volume.
	resp, body, err = post("tiny", `{"workload":"blackscholes-ooc","scale":65536,"degrade":true}`)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tiny degrade eval: got %d (%s), want 200", resp.StatusCode, body)
	}
	var dg struct {
		Mode       string `json:"mode"`
		SpillBytes int64  `json:"spill_bytes"`
	}
	if err := json.Unmarshal(body, &dg); err != nil {
		return fmt.Errorf("tiny degrade eval: bad body %s: %w", body, err)
	}
	if dg.Mode != "out-of-core" || dg.SpillBytes <= 0 {
		return fmt.Errorf("tiny degrade eval: mode %q spill_bytes %d, want out-of-core with spill", dg.Mode, dg.SpillBytes)
	}
	logf("smoke: tiny degraded to out-of-core, spilled %d bytes", dg.SpillBytes)

	// 4. Tenant accounting shows up on the status endpoint.
	resp, err = http.Get(base + "/v1/tenants")
	if err != nil {
		return err
	}
	var statuses []serve.TenantStatus
	err = json.NewDecoder(resp.Body).Decode(&statuses)
	resp.Body.Close()
	if err != nil {
		return err
	}
	var sawShed bool
	for _, st := range statuses {
		if st.Name == "tiny" && st.Shed == 1 {
			sawShed = true
		}
	}
	if !sawShed {
		return fmt.Errorf("tenant status did not record tiny's shed request: %+v", statuses)
	}

	// 5. A real SIGTERM round-trip: admission stops, drain completes, every
	// budget byte returns to the shared governor.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return err
	}
	<-sigCtx.Done()
	if err := srv.Drain(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("readyz after drain: got %d, want 503", resp.StatusCode)
	}
	if got := srv.GlobalGovernor().InUse(); got != 0 {
		return fmt.Errorf("shared governor holds %d bytes after drain", got)
	}
	logf("smoke: SIGTERM drained cleanly, readyz 503, shared governor empty")

	shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr
	return nil
}
