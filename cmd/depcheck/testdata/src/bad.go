package bad

import (
	"context"

	mozart "mozart"
	"mozart/internal/core"
)

func uses(s *mozart.Session) error {
	var st mozart.Stats // line 11: deprecated type
	_ = st
	var st2 core.Stats // line 13: deprecated type
	_ = st2
	snap := s.Stats() // fine: method call returning StatsSnapshot
	_ = snap
	if err := s.Evaluate(); err != nil { // line 17: deprecated shim
		return err
	}
	if err := s.Evaluate(); err != nil { // deprecated-ok: sanctioned
		return err
	}
	return s.EvaluateContext(context.Background()) // fine
}
