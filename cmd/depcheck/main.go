// Command depcheck is the repo's dependency-free deprecation gate: it walks
// the module's Go sources and flags uses of APIs this repo has deprecated,
// so new call sites fail `make ci` even on machines without staticcheck
// installed (the Makefile prefers staticcheck's SA1019 when present and
// falls back to this checker).
//
// Checked patterns:
//
//   - zero-argument calls of a method named Evaluate — the deprecated
//     Session.Evaluate shim; use EvaluateContext.
//   - the type names mozart.Stats / core.Stats — deprecated aliases of
//     StatsSnapshot.
//
// A use that must stay (compat tests, the shim's own definition) is
// sanctioned by putting "deprecated-ok" in a comment on the same line.
//
// Usage: depcheck [root]   (root defaults to ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 && os.Args[1] != "./..." {
		root = os.Args[1]
	}
	findings, err := check(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "depcheck: %v\n", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "depcheck: %d use(s) of deprecated APIs (annotate intentional ones with deprecated-ok)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("depcheck: no uses of deprecated APIs")
}

// check walks root and returns one finding line per deprecated use.
func check(root string) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "vendor" ||
				(strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fs, err := checkFile(path)
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	})
	sort.Strings(findings)
	return findings, err
}

// checkFile parses one file and reports deprecated uses not sanctioned by a
// same-line "deprecated-ok" comment.
func checkFile(path string) ([]string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(src), "\n")
	sanctioned := func(pos token.Pos) bool {
		line := fset.Position(pos).Line
		return line-1 < len(lines) && strings.Contains(lines[line-1], "deprecated-ok")
	}
	// Calls' Fun nodes, so plain selector checks can skip method calls:
	// s.Stats() is fine, the type name core.Stats is not.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			callFuns[c.Fun] = true
		}
		return true
	})

	var findings []string
	report := func(pos token.Pos, what string) {
		if sanctioned(pos) {
			return
		}
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Evaluate" && len(x.Args) == 0 {
				// The shim's own definition lives in a declaration, not a
				// call, so every zero-arg .Evaluate() call is a use.
				report(sel.Sel.Pos(), "deprecated Session.Evaluate: use EvaluateContext")
			}
		case *ast.SelectorExpr:
			if x.Sel.Name != "Stats" || callFuns[ast.Expr(x)] {
				return true
			}
			if id, ok := x.X.(*ast.Ident); ok && (id.Name == "mozart" || id.Name == "core") {
				report(x.Sel.Pos(), "deprecated "+id.Name+".Stats type: use StatsSnapshot")
			}
		}
		return true
	})
	return findings, nil
}
