package main

import (
	"strings"
	"testing"
)

// TestCheckFindsDeprecatedUses runs the checker over the fixture tree:
// both deprecated patterns are flagged, method calls named Stats and
// deprecated-ok-annotated lines are not.
func TestCheckFindsDeprecatedUses(t *testing.T) {
	findings, err := check("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %v, want 3", findings)
	}
	wantSubstr := []string{
		"bad.go:11: deprecated mozart.Stats",
		"bad.go:13: deprecated core.Stats",
		"bad.go:17: deprecated Session.Evaluate",
	}
	for i, want := range wantSubstr {
		if !strings.Contains(findings[i], want) {
			t.Errorf("finding %d = %q, want substring %q", i, findings[i], want)
		}
	}
}

// TestCheckCleanRepo: the repo itself must stay gate-clean — this is the
// same assertion `make ci` runs via `go run ./cmd/depcheck`, kept here so
// plain `go test ./...` catches new deprecated call sites too.
func TestCheckCleanRepo(t *testing.T) {
	findings, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("deprecated API uses in repo:\n%s", strings.Join(findings, "\n"))
	}
}
