package mozart_test

import (
	"strings"
	"testing"
	"time"

	"mozart"
	"mozart/internal/annotations/vmathsa"
	"mozart/internal/tune"
)

// buildChain registers the canonical three-call chain on a session and
// returns the lazy total (sum(a) when b is all twos).
func buildChain(s *mozart.Session, n int) *mozart.Future {
	a := make([]float64, n)
	b := make([]float64, n)
	out := make([]float64, n)
	for i := range a {
		a[i] = float64(i + 1)
		b[i] = 2
	}
	vmathsa.Div(s, n, a, b, out)
	vmathsa.Add(s, n, out, out, out)
	return vmathsa.Sum(s, n, out)
}

// TestZeroValueTunerPlansIdentical pins the tentpole's compatibility
// contract: a session carrying a zero-value (inert) Tuner must plan byte
// for byte like a session with no BatchSource at all — same Explain tree,
// same provenance, same signature.
func TestZeroValueTunerPlansIdentical(t *testing.T) {
	const n = 1 << 12
	base := mozart.NewSession(mozart.Options{Workers: 2})
	buildChain(base, n)
	want, err := mozart.Explain(base)
	if err != nil {
		t.Fatal(err)
	}

	var inert tune.Tuner // zero value: never enabled
	tuned := mozart.NewSession(mozart.WithTuner(mozart.Options{Workers: 2}, &inert))
	buildChain(tuned, n)
	got, err := mozart.Explain(tuned)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("zero-value Tuner changed the plan:\n--- no tuner ---\n%s--- zero tuner ---\n%s", want, got)
	}
	if !strings.Contains(want, "[static]") {
		t.Errorf("untuned plan header missing [static] provenance:\n%s", want)
	}
}

// TestTunerProvenanceLoop drives one session through the full state
// machine and watches it in Explain: the first plan is [static], the plans
// after the baseline measurement are [sweeping], and once the sweep
// converges the header reads [calibrated] with the tuner's batch override.
func TestTunerProvenanceLoop(t *testing.T) {
	clock := time.Unix(0, 0)
	tu := tune.New(tune.Config{
		Clock: func() time.Time { clock = clock.Add(time.Second); return clock },
		Seed:  1,
		// A small budget keeps the loop short; the grid for 2^15 elements
		// spans 512..32768.
		Budget: 8,
		// The in-process timings below are noisy; accept any sweep winner.
		Hysteresis: 1e-9,
	})
	const n = 1 << 15

	provenance := func() string {
		s := mozart.NewSession(mozart.WithTuner(mozart.Options{Workers: 2}, tu))
		total := buildChain(s, n)
		text, err := mozart.Explain(s)
		if err != nil {
			t.Fatal(err)
		}
		header := strings.SplitN(text, "\n", 2)[0]
		open, close := strings.LastIndexByte(header, '['), strings.LastIndexByte(header, ']')
		if open < 0 || close < open {
			t.Fatalf("no provenance bracket in header %q", header)
		}
		v, err := total.Float64()
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(n) * float64(n+1) / 2; v != want {
			t.Fatalf("sum = %v, want %v (tuned plan must stay correct)", v, want)
		}
		return header[open+1 : close]
	}

	if got := provenance(); got != "static" {
		t.Fatalf("first evaluation provenance = %q, want static", got)
	}
	if got := provenance(); got != "sweeping" {
		t.Fatalf("post-baseline provenance = %q, want sweeping", got)
	}
	saw := map[string]bool{"static": true, "sweeping": true}
	for i := 0; i < 20 && !saw["calibrated"] && !saw["reverted"]; i++ {
		saw[provenance()] = true
	}
	if !saw["calibrated"] && !saw["reverted"] {
		t.Fatalf("sweep never converged; provenances seen: %v", saw)
	}
	// Whatever the outcome, the tuner must report a terminal phase for the
	// chain's signature.
	sts := tu.States()
	if len(sts) != 1 {
		t.Fatalf("tuner tracks %d signatures, want 1 (same chain every round)", len(sts))
	}
	if p := sts[0].Phase; p != tune.PhaseCalibrated && p != tune.PhaseReverted {
		t.Errorf("tuner phase = %v, want terminal", p)
	}
}

// TestPlanSignatureStable: the exported structural signature must be
// identical across sessions running the same chain, and must not depend on
// the worker count — that is what lets one Tuner serve many sessions.
func TestPlanSignatureStable(t *testing.T) {
	sig := func(workers int) string {
		s := mozart.NewSession(mozart.Options{Workers: workers})
		buildChain(s, 1<<12)
		p, err := s.Plan()
		if err != nil {
			t.Fatal(err)
		}
		return mozart.PlanSignature(p)
	}
	s2, s8 := sig(2), sig(8)
	if s2 == "" {
		t.Fatal("empty signature")
	}
	if s2 != s8 {
		t.Errorf("signature depends on workers:\n2: %s\n8: %s", s2, s8)
	}
}
